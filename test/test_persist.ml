(* Ts_persist (the on-disk result store + sweep journals) and the Cached
   layer over it: roundtrips, corruption tolerance, key versioning,
   journal resume, and the end-to-end guarantee that caching never
   changes results (cold = warm = uncached), with the simulator fast path
   agreeing with exact execution on fuzzed loops. *)

module P = Ts_persist
module Cached = Ts_harness.Cached

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsms-test-persist-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.file_exists p then
          if Sys.is_directory p then begin
            Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
            Sys.rmdir p
          end
          else Sys.remove p
      in
      rm dir)
    (fun () -> f (P.open_store ~dir))

(* objects/<shard>/<key>.bin — the documented layout, relied on here to
   corrupt entries in place. *)
let object_path store key =
  Filename.concat
    (Filename.concat (Filename.concat (P.dir store) "objects") (String.sub key 0 2))
    (key ^ ".bin")

let test_roundtrip () =
  with_store (fun s ->
      let key = P.digest_hex "roundtrip" in
      check_bool "miss before store" true ((P.find s ~key : int option) = None);
      let v = ("payload", 42, [ 1.5; -3.0 ]) in
      P.store s ~key v;
      check_bool "hit after store" true (P.find s ~key = Some v);
      check_bool "other key still misses" true
        ((P.find s ~key:(P.digest_hex "other") : int option) = None))

let clobber path f =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f s);
  close_out oc

let test_corruption_is_a_miss () =
  with_store (fun s ->
      let key = P.digest_hex "corrupt" in
      P.store s ~key [ 1; 2; 3 ];
      let path = object_path s key in
      (* Flip a payload byte: digest check fails, entry is dropped. *)
      clobber path (fun body ->
          let b = Bytes.of_string body in
          let i = Bytes.length b - 1 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
          Bytes.to_string b);
      check_bool "garbled entry misses" true
        ((P.find s ~key : int list option) = None);
      check_bool "garbled entry deleted" false (Sys.file_exists path);
      (* Truncation likewise. *)
      P.store s ~key [ 1; 2; 3 ];
      clobber path (fun body -> String.sub body 0 (String.length body / 2));
      check_bool "truncated entry misses" true
        ((P.find s ~key : int list option) = None);
      (* And the store still works after both. *)
      P.store s ~key [ 4 ];
      check_bool "recovers" true (P.find s ~key = Some [ 4 ]))

let test_version_in_key_invalidates () =
  (* Cached stamps code_version into every key; this is the mechanism. *)
  with_store (fun s ->
      let key_v n = P.digest_hex (Printf.sprintf "sim\x00%d\x00inputs" n) in
      P.store s ~key:(key_v Cached.code_version) "old result";
      check_bool "same version hits" true
        (P.find s ~key:(key_v Cached.code_version) = Some "old result");
      check_bool "bumped version misses" true
        ((P.find s ~key:(key_v (Cached.code_version + 1)) : string option) = None))

let test_memo_computes_once () =
  with_store (fun s ->
      let calls = ref 0 in
      let f () = incr calls; !calls * 10 in
      check_int "no store: every call computes" 10 (P.memo None ~key:"k" f);
      check_int "first memo computes" 20 (P.memo (Some s) ~key:"k" f);
      check_int "second memo replays" 20 (P.memo (Some s) ~key:"k" f);
      check_int "f ran twice in total" 2 !calls)

let test_journal_resume () =
  with_store (fun s ->
      let fp = "sweep-config-v1" in
      let j = P.Journal.load s ~name:"sweep" ~fingerprint:fp ~resume:false in
      P.Journal.record j ~id:"loop-a" (1, "a");
      P.Journal.record j ~id:"loop-b" (2, "b");
      (* Simulated kill: no [finish]; the log stays on disk. *)
      let j2 = P.Journal.load s ~name:"sweep" ~fingerprint:fp ~resume:true in
      check_bool "loop-a replayed" true (P.Journal.find j2 ~id:"loop-a" = Some (1, "a"));
      check_bool "loop-b replayed" true (P.Journal.find j2 ~id:"loop-b" = Some (2, "b"));
      check_bool "unknown id misses" true
        ((P.Journal.find j2 ~id:"loop-c" : (int * string) option) = None);
      P.Journal.record j2 ~id:"loop-c" (3, "c");
      P.Journal.finish j2;
      (* A finished sweep leaves nothing to resume. *)
      let j3 = P.Journal.load s ~name:"sweep" ~fingerprint:fp ~resume:true in
      check_bool "finish removes the log" true
        ((P.Journal.find j3 ~id:"loop-a" : (int * string) option) = None))

let test_journal_fingerprint_guard () =
  with_store (fun s ->
      let j = P.Journal.load s ~name:"g" ~fingerprint:"cfg-1" ~resume:false in
      P.Journal.record j ~id:"x" 7;
      (* Config changed between runs: the old log must not replay. *)
      let j2 = P.Journal.load s ~name:"g" ~fingerprint:"cfg-2" ~resume:true in
      check_bool "stale journal discarded" true
        ((P.Journal.find j2 ~id:"x" : int option) = None))

let test_journal_truncated_tail () =
  with_store (fun s ->
      let j = P.Journal.load s ~name:"t" ~fingerprint:"fp" ~resume:false in
      P.Journal.record j ~id:"first" 100;
      P.Journal.record j ~id:"second" 200;
      let path =
        Filename.concat (Filename.concat (P.dir s) "journals") "t.j"
      in
      (* A crash mid-append leaves a ragged tail; replay keeps the prefix. *)
      clobber path (fun body -> String.sub body 0 (String.length body - 5));
      let j2 = P.Journal.load s ~name:"t" ~fingerprint:"fp" ~resume:true in
      check_bool "intact prefix replays" true (P.Journal.find j2 ~id:"first" = Some 100);
      check_bool "torn record dropped" true
        ((P.Journal.find j2 ~id:"second" : int option) = None))

(* --- the Cached layer: caching must never change results --- *)

let sim_setup () =
  let g = Ts_workload.Motivating.ddg () in
  let cfg = Ts_spmt.Config.default in
  let params = cfg.Ts_spmt.Config.params in
  let tms = (Ts_tms.Tms.schedule_sweep ~params g).Ts_tms.Tms.kernel in
  (g, cfg, params, tms)

(* Kernels carry closures (the machine's describe function), so compare
   their marshal-safe projection: (ii, issue times). *)
let k_plain (k : Ts_modsched.Kernel.t) = (k.ii, k.time)

let test_cached_cold_warm_uncached_equal () =
  let g, cfg, params, _ = sim_setup () in
  let saved = Cached.get_store () in
  Fun.protect
    ~finally:(fun () -> Cached.set_store saved)
    (fun () ->
      Cached.set_store None;
      let run () =
        let tms = Cached.tms_sweep ~params g in
        let sms = Cached.sms g in
        ( k_plain tms.Ts_tms.Tms.kernel,
          k_plain sms.Ts_sms.Sms.kernel,
          Cached.sim ~warmup:64 cfg tms.Ts_tms.Tms.kernel ~trip:256 )
      in
      let uncached = run () in
      with_store (fun s ->
          Cached.set_store (Some s);
          let cold = run () in
          let warm = run () in
          check_bool "cold = uncached" true (cold = uncached);
          check_bool "warm = uncached" true (warm = uncached)))

let test_cached_reconstruction_guard () =
  (* A stored schedule that no longer fits its loop (here: a kernel for a
     different DDG colliding on... nothing — we corrupt the entry payload
     to valid marshal of wrong shape) must be recomputed, not returned. *)
  let g, _cfg, params, _ = sim_setup () in
  let saved = Cached.get_store () in
  Fun.protect
    ~finally:(fun () -> Cached.set_store saved)
    (fun () ->
      with_store (fun s ->
          Cached.set_store (Some s);
          let r1 = Cached.tms_sweep ~params g in
          (* Overwrite every object with a marshalled value of the wrong
             type: find will either fail the digest, or reconstruction
             will reject it — both must fall back to recomputation. *)
          let objects = Filename.concat (P.dir s) "objects" in
          Array.iter
            (fun shard ->
              let sd = Filename.concat objects shard in
              Array.iter
                (fun f ->
                  let key = Filename.chop_suffix f ".bin" in
                  P.store s ~key (( "bogus", [| 3 |] ) : string * int array))
                (Sys.readdir sd))
            (Sys.readdir objects);
          let r2 = Cached.tms_sweep ~params g in
          check_bool "recomputed result identical" true
            (k_plain r1.Ts_tms.Tms.kernel = k_plain r2.Ts_tms.Tms.kernel
            && r1.Ts_tms.Tms.misspec = r2.Ts_tms.Tms.misspec)))

let test_fast_path_equals_exact_on_fuzz_seeds () =
  let cfg = Ts_spmt.Config.default in
  let params = cfg.Ts_spmt.Config.params in
  for seed = 0 to 4 do
    let g = Ts_fuzz.Fuzz.loop_for_seed seed in
    let k = (Ts_tms.Tms.schedule_sweep ~params g).Ts_tms.Tms.kernel in
    let plan = Ts_spmt.Address_plan.create g in
    let exact = Ts_spmt.Sim.run ~plan ~warmup:32 ~fast:false cfg k ~trip:200 in
    let fast = Ts_spmt.Sim.run ~plan ~warmup:32 ~fast:true cfg k ~trip:200 in
    check_bool (Printf.sprintf "seed %d: fast = exact" seed) true (exact = fast)
  done

(* --- multi-domain store safety ---

   Under the resident pool every worker shares one pid, so the tempfile
   name disambiguator must be atomic: pre-fix, two domains storing
   concurrently could write the same tmp file and rename a torn mix.
   Hammer both the distinct-key and the same-key paths and require zero
   degradations and intact entries. *)

let test_concurrent_store_distinct_keys () =
  with_store (fun s ->
      let degraded0 =
        Ts_obs.Metrics.counter_value
          (Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.degraded")
      in
      let n_dom = 4 and per = 50 in
      let doms =
        List.init n_dom (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to per - 1 do
                  P.store s ~key:(P.digest_hex (Printf.sprintf "cc-%d-%d" d i)) (d, i)
                done))
      in
      List.iter Domain.join doms;
      for d = 0 to n_dom - 1 do
        for i = 0 to per - 1 do
          check_bool
            (Printf.sprintf "entry %d/%d intact" d i)
            true
            (P.find s ~key:(P.digest_hex (Printf.sprintf "cc-%d-%d" d i)) = Some (d, i))
        done
      done;
      check_int "no degradations" degraded0
        (Ts_obs.Metrics.counter_value
           (Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.degraded")))

let test_concurrent_store_same_key () =
  with_store (fun s ->
      let degraded0 =
        Ts_obs.Metrics.counter_value
          (Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.degraded")
      in
      let key = P.digest_hex "contended" in
      let n_dom = 4 and per = 100 in
      let doms =
        List.init n_dom (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to per - 1 do
                  P.store s ~key (d, i)
                done))
      in
      List.iter Domain.join doms;
      (match (P.find s ~key : (int * int) option) with
      | Some (d, i) ->
          check_bool "winner is one of the stored values" true
            (d >= 0 && d < n_dom && i >= 0 && i < per)
      | None -> Alcotest.fail "contended entry lost");
      check_int "no degradations under same-key contention" degraded0
        (Ts_obs.Metrics.counter_value
           (Ts_obs.Metrics.counter Ts_obs.Metrics.default "persist.degraded")))

(* --- warmup default: harness, CLI and wire must agree --- *)

let test_sim_default_warmup_matches_cli () =
  let g, cfg, _params, k = sim_setup () in
  let saved = Cached.get_store () in
  Fun.protect
    ~finally:(fun () -> Cached.set_store saved)
    (fun () ->
      Cached.set_store None;
      check_int "shared default is the documented 512" 512
        Ts_harness.Defaults.warmup;
      (* [Cached.sim] with the argument omitted must measure exactly what
         an explicit [Defaults.warmup] run measures — the fig2 driver
         once published cold-cache numbers because the default was 0. *)
      let via_harness = Cached.sim cfg k ~trip:256 in
      let direct =
        Ts_spmt.Sim.run ~seed:g.Ts_ddg.Ddg.name ~sync_mem:false
          ~warmup:Ts_harness.Defaults.warmup ~fast:true cfg k ~trip:256
      in
      check_bool "harness default = explicit Defaults.warmup" true
        (via_harness = direct);
      (* The daemon's wire default for a request omitting "warmup" is the
         same shared constant. *)
      let j =
        Ts_obs.Json.Obj
          [
            ("id", Ts_obs.Json.Int 1);
            ("op", Ts_obs.Json.Str "simulate");
            ("ddg", Ts_obs.Json.Str "unparsed-at-this-layer");
          ]
      in
      match Ts_serve.Protocol.request_of_json j with
      | Ok { Ts_serve.Protocol.op = Ts_serve.Protocol.Simulate a; _ } ->
          check_int "wire default = Defaults.warmup" Ts_harness.Defaults.warmup
            a.Ts_serve.Protocol.warmup
      | Ok _ -> Alcotest.fail "simulate request parsed to a different op"
      | Error e -> Alcotest.failf "simulate request rejected: %s" e)

(* --- cached hits must never share mutable state --- *)

let test_cached_hits_share_no_mutable_state () =
  let g, _cfg, params, _ = sim_setup () in
  let saved = Cached.get_store () in
  Fun.protect
    ~finally:(fun () ->
      Cached.set_store saved;
      Cached.set_lru None)
    (fun () ->
      with_store (fun s ->
          Cached.set_store (Some s);
          Cached.set_lru (Some 32);
          let pristine = k_plain (Cached.tms_sweep ~params g).Ts_tms.Tms.kernel in
          (* 4 workers hammer the same cache entry and scribble over every
             kernel they get back: if any tier (LRU front, store, point
             tables) handed out a shared mutable array, a later fetch
             would see the scribbles. *)
          let doms =
            List.init 4 (fun d ->
                Domain.spawn (fun () ->
                    for i = 0 to 49 do
                      let k = (Cached.tms_sweep ~params g).Ts_tms.Tms.kernel in
                      if k_plain k <> pristine then
                        failwith
                          (Printf.sprintf
                             "domain %d iteration %d: cached hit returned \
                              scribbled state"
                             d i);
                      let scribble (a : int array) =
                        Array.fill a 0 (Array.length a) ((d * 1000) + i)
                      in
                      scribble k.Ts_modsched.Kernel.time;
                      scribble k.Ts_modsched.Kernel.row;
                      scribble k.Ts_modsched.Kernel.stage
                    done))
          in
          List.iter Domain.join doms;
          check_bool "entry still pristine after the hammer" true
            (k_plain (Cached.tms_sweep ~params g).Ts_tms.Tms.kernel = pristine);
          (* The warm-start point table's hits are fresh copies too. *)
          match Cached.point_memo ~engine:"tms" ~params g with
          | None -> Alcotest.fail "warm-start unexpectedly disabled"
          | Some (pm, _flush) -> (
              pm.Ts_tms.Tms.pm_store ~ii:7 ~c_delay:3 ~p_max:0.05
                {
                  Ts_tms.Tms.po_times = Some [| 1; 2; 3 |];
                  po_reject = None;
                  po_tally = (0, 0, 0, 0);
                  po_c2_admit_max = neg_infinity;
                  po_c2_reject_min = infinity;
                };
              match pm.Ts_tms.Tms.pm_find ~ii:7 ~c_delay:3 ~p_max:0.01 with
              | Some { Ts_tms.Tms.po_times = Some a; _ } -> (
                  a.(0) <- 999;
                  match pm.Ts_tms.Tms.pm_find ~ii:7 ~c_delay:3 ~p_max:0.25 with
                  | Some { Ts_tms.Tms.po_times = Some b; _ } ->
                      check_int "point-table hit is a fresh copy" 1 b.(0)
                  | _ -> Alcotest.fail "stored point outcome lost")
              | _ -> Alcotest.fail "stored point outcome not found")))

(* --- warm-started searches are bit-identical to cold ones --- *)

let tms_proj (r : Ts_tms.Tms.result) =
  ( k_plain r.kernel,
    r.mii,
    r.c_delay_threshold,
    r.achieved_c_delay,
    r.p_max,
    r.misspec,
    r.f_min,
    r.attempts,
    r.fell_back )

let cval name =
  Ts_obs.Metrics.counter_value
    (Ts_obs.Metrics.counter Ts_obs.Metrics.default name)

let test_warm_start_bit_identical_on_fuzz_seeds () =
  let params = Ts_isa.Spmt_params.default in
  let saved = Cached.get_store () in
  Fun.protect ~finally:(fun () -> Cached.set_store saved) @@ fun () ->
  with_store (fun s ->
      Cached.set_store (Some s);
      for seed = 0 to 5 do
        let g = Ts_fuzz.Fuzz.loop_for_seed seed in
        let cold = Ts_tms.Tms.schedule_sweep ~params g in
        (match Cached.point_memo ~engine:"tms" ~params g with
        | None -> Alcotest.fail "warm-start unexpectedly disabled"
        | Some (pm, flush) ->
            (* First memoised run populates the point table cold... *)
            let populate = Ts_tms.Tms.schedule_sweep ~point_memo:pm ~params g in
            flush ();
            check_bool (Printf.sprintf "seed %d: populating run = cold" seed)
              true
              (tms_proj populate = tms_proj cold);
            (* ... then a fresh provider reloads it from the store and the
               whole grid walk replays from recorded outcomes. *)
            let pm2, flush2 =
              Option.get (Cached.point_memo ~engine:"tms" ~params g)
            in
            let h0 = cval "tms.warm.point_hits" in
            let warm = Ts_tms.Tms.schedule_sweep ~point_memo:pm2 ~params g in
            flush2 ();
            check_bool (Printf.sprintf "seed %d: warm = cold" seed) true
              (tms_proj warm = tms_proj cold);
            check_bool (Printf.sprintf "seed %d: warm path actually hit" seed)
              true
              (cval "tms.warm.point_hits" > h0));
        (* The IMS instantiation records a different engine's outcomes
           under a different key; spot-check the same property. *)
        if seed < 2 then begin
          let coldi = Ts_tms.Tms_ims.schedule ~params g in
          match Cached.point_memo ~engine:"tms_ims" ~params g with
          | None -> Alcotest.fail "warm-start unexpectedly disabled"
          | Some (pmi, flushi) ->
              let popi =
                Ts_tms.Tms_ims.schedule ~point_memo:pmi ~params g
              in
              flushi ();
              check_bool (Printf.sprintf "seed %d: ims populate = cold" seed)
                true
                (tms_proj popi = tms_proj coldi);
              let pmi2, flushi2 =
                Option.get (Cached.point_memo ~engine:"tms_ims" ~params g)
              in
              let warmi =
                Ts_tms.Tms_ims.schedule ~point_memo:pmi2 ~params g
              in
              flushi2 ();
              check_bool (Printf.sprintf "seed %d: ims warm = cold" seed) true
                (tms_proj warmi = tms_proj coldi)
        end
      done)

let test_warm_start_corrupt_or_missing_falls_back () =
  let params = Ts_isa.Spmt_params.default in
  let g = Ts_workload.Motivating.ddg () in
  let cold = Ts_tms.Tms.schedule_sweep ~params g in
  (* A memo claiming every grid point succeeded with unreconstructable
     times: [Kernel.of_times] rejects them, and every point must fall
     back to a cold attempt — same result, counters included. *)
  let poison =
    {
      Ts_tms.Tms.pm_find =
        (fun ~ii:_ ~c_delay:_ ~p_max:_ ->
          Some
            {
              Ts_tms.Tms.po_times = Some [||];
              po_reject = None;
              po_tally = (9, 9, 9, 9);
              po_c2_admit_max = neg_infinity;
              po_c2_reject_min = infinity;
            });
      pm_store = (fun ~ii:_ ~c_delay:_ ~p_max:_ _ -> ());
    }
  in
  let r = Ts_tms.Tms.schedule_sweep ~point_memo:poison ~params g in
  check_bool "poisoned entries fall back to cold scheduling" true
    (tms_proj r = tms_proj cold);
  (* Every neighbour missing (empty table) degrades to a plain cold
     search. *)
  let empty =
    {
      Ts_tms.Tms.pm_find = (fun ~ii:_ ~c_delay:_ ~p_max:_ -> None);
      pm_store = (fun ~ii:_ ~c_delay:_ ~p_max:_ _ -> ());
    }
  in
  let r2 = Ts_tms.Tms.schedule_sweep ~point_memo:empty ~params g in
  check_bool "missing entries = cold search" true (tms_proj r2 = tms_proj cold)

(* --- the in-memory LRU front --- *)

let test_lru_basics () =
  let l : int P.Lru.t = P.Lru.create ~capacity:3 () in
  check_int "capacity" 3 (P.Lru.capacity l);
  check_bool "miss on empty" true (P.Lru.find l "a" = None);
  P.Lru.put l "a" 1;
  P.Lru.put l "b" 2;
  P.Lru.put l "c" 3;
  check_bool "hit after put" true (P.Lru.find l "a" = Some 1);
  (* "a" was just refreshed, so "b" is now least recently used. *)
  P.Lru.put l "d" 4;
  check_bool "LRU entry evicted" true (P.Lru.find l "b" = None);
  check_bool "refreshed entry survives" true (P.Lru.find l "a" = Some 1);
  check_int "capacity bound holds" 3 (P.Lru.length l);
  P.Lru.put l "a" 10;
  check_bool "put replaces in place" true (P.Lru.find l "a" = Some 10);
  check_int "replace does not grow" 3 (P.Lru.length l);
  P.Lru.clear l;
  check_int "clear empties" 0 (P.Lru.length l);
  check_bool "capacity >= 1 enforced" true
    (match P.Lru.create ~capacity:0 () with
    | (_ : int P.Lru.t) -> false
    | exception Invalid_argument _ -> true)

(* Model-based property: random put/find traffic against a naive
   reference implementation, comparing contents and exact eviction
   order at every step. *)
let test_lru_matches_model () =
  let cap = 4 in
  let l : int P.Lru.t = P.Lru.create ~capacity:cap () in
  (* model: (key, value) list, MRU first *)
  let model = ref [] in
  let model_find k =
    match List.assoc_opt k !model with
    | None -> None
    | Some v ->
        model := (k, v) :: List.remove_assoc k !model;
        Some v
  in
  let model_put k v =
    model := (k, v) :: List.remove_assoc k !model;
    if List.length !model > cap then
      model := List.filteri (fun i _ -> i < cap) !model
  in
  let st = ref 0x2545F491 in
  let rand m = st := (!st * 1103515245 + 12345) land 0x3FFFFFFF; !st mod m in
  for step = 1 to 2000 do
    let k = Printf.sprintf "k%d" (rand 7) in
    if rand 2 = 0 then begin
      let v = rand 1000 in
      P.Lru.put l k v;
      model_put k v
    end
    else begin
      let got = P.Lru.find l k and expect = model_find k in
      if got <> expect then
        Alcotest.failf "step %d: find %s diverged from model" step k
    end;
    if P.Lru.keys_mru_first l <> List.map fst !model then
      Alcotest.failf "step %d: recency order diverged from model" step;
    if P.Lru.length l > cap then Alcotest.failf "step %d: capacity exceeded" step
  done

let test_lru_domain_safety () =
  let l : int P.Lru.t = P.Lru.create ~capacity:64 () in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 999 do
              let k = Printf.sprintf "k%d" ((d * 37 + i) mod 128) in
              if i land 1 = 0 then P.Lru.put l k i else ignore (P.Lru.find l k)
            done))
  in
  List.iter Domain.join doms;
  check_bool "capacity bound under contention" true (P.Lru.length l <= 64);
  (* The intrusive list is still consistent: walkable and put/find work. *)
  check_int "key walk matches length" (P.Lru.length l)
    (List.length (P.Lru.keys_mru_first l));
  P.Lru.put l "after" 1;
  check_bool "still usable" true (P.Lru.find l "after" = Some 1)

let suite =
  [
    Alcotest.test_case "store roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "concurrent stores, distinct keys" `Quick
      test_concurrent_store_distinct_keys;
    Alcotest.test_case "concurrent stores, same key" `Quick
      test_concurrent_store_same_key;
    Alcotest.test_case "lru basics + eviction order" `Quick test_lru_basics;
    Alcotest.test_case "lru matches reference model" `Quick test_lru_matches_model;
    Alcotest.test_case "lru domain safety" `Quick test_lru_domain_safety;
    Alcotest.test_case "corruption is a miss" `Quick test_corruption_is_a_miss;
    Alcotest.test_case "version bump invalidates" `Quick test_version_in_key_invalidates;
    Alcotest.test_case "memo computes once" `Quick test_memo_computes_once;
    Alcotest.test_case "journal resume replay" `Quick test_journal_resume;
    Alcotest.test_case "journal fingerprint guard" `Quick test_journal_fingerprint_guard;
    Alcotest.test_case "journal truncated tail" `Quick test_journal_truncated_tail;
    Alcotest.test_case "cached: cold = warm = uncached" `Quick
      test_cached_cold_warm_uncached_equal;
    Alcotest.test_case "cached: bad entry recomputed" `Quick
      test_cached_reconstruction_guard;
    Alcotest.test_case "cached: default warmup = CLI/wire warmup" `Quick
      test_sim_default_warmup_matches_cli;
    Alcotest.test_case "cached: hits share no mutable state" `Quick
      test_cached_hits_share_no_mutable_state;
    Alcotest.test_case "warm-start: bit-identical on fuzz seeds" `Slow
      test_warm_start_bit_identical_on_fuzz_seeds;
    Alcotest.test_case "warm-start: corrupt/missing entries fall back" `Quick
      test_warm_start_corrupt_or_missing_falls_back;
    Alcotest.test_case "sim: fast = exact on fuzz seeds" `Slow
      test_fast_path_equals_exact_on_fuzz_seeds;
  ]
