(* The Ts_check invariant checker and the differential fuzzer.

   The full 200-seed sweep runs in CI (and via `tsms check`); here a
   smaller deterministic slice keeps the suite fast while still driving
   every phase: the unit-level reference-model streams, the per-seed
   scheduler battery (validation, guard self-tests, checked simulation,
   cost-model band), the checker's own error paths, and the shrinker. *)

module Inv = Ts_check.Invariant
module Fz = Ts_fuzz.Fuzz
module K = Ts_modsched.Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Invariant: violations manufactured by hand --- *)

let test_check_times_accepts_valid () =
  let g = Fixtures.chain 3 in
  check_int "no violations" 0 (List.length (Inv.check_times g ~ii:2 [| 0; 1; 2 |]))

let test_check_times_dependence () =
  let g = Fixtures.chain 3 in
  match Inv.check_times g ~ii:2 [| 0; 0; 2 |] with
  | [ v ] -> check_bool "dependence violation" true (v.Inv.what = "dependence")
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_check_times_resources () =
  (* 3 loads in one row on 2 memory ports *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  for _ = 1 to 3 do
    ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load)
  done;
  let g = Ts_ddg.Ddg.Builder.build b in
  check_bool "resource violation found" true
    (List.exists
       (fun v -> v.Inv.what = "resource")
       (Inv.check_times g ~ii:2 [| 0; 0; 0 |]))

let test_check_times_busy_wraparound () =
  (* one fdiv (busy 16) at ii=4 occupies every fdiv cell 4x over: a second
     fdiv cannot coexist anywhere in the table *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Fdiv);
  ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Fdiv);
  let g = Ts_ddg.Ddg.Builder.build b in
  check_bool "wrapped busy cycles conflict" true
    (List.exists
       (fun v -> v.Inv.what = "resource")
       (Inv.check_times g ~ii:4 [| 0; 2 |]))

let test_check_kernel_valid_sms () =
  let g = Fixtures.motivating () in
  let k = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  check_int "clean kernel" 0 (List.length (Inv.check_kernel k))

let test_check_kernel_claim_c1 () =
  (* the motivating SMS kernel has C_delay 11 at c_reg_com 3: claiming a
     tighter bound must produce a C1 violation, claiming 11 must not *)
  let g = Fixtures.motivating () in
  let k = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  let claim c_delay = { Inv.c_delay; p_max = 1.0; c_reg_com = 3 } in
  check_int "achieved C_delay accepted" 0
    (List.length (Inv.check_kernel ~claim:(claim 11) k));
  check_bool "tighter claim violated" true
    (List.exists
       (fun v -> v.Inv.what = "C1")
       (Inv.check_kernel ~claim:(claim 10) k))

let test_check_kernel_claim_c2 () =
  (* spec_loop's carried store->load has p=0.1 and is not preserved in the
     SMS schedule: a P_max below it must trip C2 *)
  let g = Fixtures.spec_loop () in
  let k = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  let claim p_max = { Inv.c_delay = 100; p_max; c_reg_com = 3 } in
  check_int "generous P_max accepted" 0
    (List.length (Inv.check_kernel ~claim:(claim 0.5) k));
  check_bool "tight P_max violated" true
    (List.exists
       (fun v -> v.Inv.what = "C2")
       (Inv.check_kernel ~claim:(claim 0.01) k))

let test_check_kernel_exn () =
  let g = Fixtures.motivating () in
  let k = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  Inv.check_kernel_exn k;
  check_bool "exn carries the report" true
    (match
       Inv.check_kernel_exn ~claim:{ Inv.c_delay = 0; p_max = 1.0; c_reg_com = 3 } k
     with
    | () -> false
    | exception Inv.Check_failed msg ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        contains msg "C1")

(* --- the fuzzer's pieces --- *)

let quick_config =
  { Fz.default_config with seeds = 6; trip = 48; warmup = 8; unit_rounds = 6 }

let test_unit_models_clean () =
  check_bool "mdt stream clean" true (Fz.check_mdt_model ~rounds:8 = None);
  check_bool "cache stream clean" true (Fz.check_cache_model ~rounds:8 = None);
  check_bool "mrt stream clean" true (Fz.check_mrt_model ~rounds:8 = None)

let test_loop_generation_deterministic () =
  let a = Fz.loop_for_seed 7 and b = Fz.loop_for_seed 7 in
  Alcotest.(check string)
    "same text" (Ts_ddg.Parse.to_string a) (Ts_ddg.Parse.to_string b);
  check_bool "different seeds differ" true
    (Ts_ddg.Parse.to_string a <> Ts_ddg.Parse.to_string (Fz.loop_for_seed 8))

let test_seeds_clean () =
  for seed = 0 to quick_config.Fz.seeds - 1 do
    match Fz.check_seed quick_config seed with
    | None -> ()
    | Some f ->
        Alcotest.failf "seed %d: %s failed: %s" seed f.Fz.subject f.Fz.reason
  done

let test_run_clean_and_parallel_deterministic () =
  check_bool "sequential run clean" true (Fz.run quick_config = None);
  check_bool "parallel run clean" true (Fz.run ~jobs:2 quick_config = None)

let test_band_catches_nonsense_estimate () =
  (* collapse the band (upper edge at est/100): the sim-vs-cost-model
     comparison must now fire on an ordinary loop, proving it is live *)
  let tight = { quick_config with Fz.tol_rel = 0.01; tol_abs = 0.0 } in
  let g = Fixtures.spec_loop () in
  let pt = { Fz.ncore = 4; c_reg_com = 3 } in
  check_bool "zero-width band trips" true (Fz.test_loop tight pt g <> None)

let test_shrink_minimises () =
  (* pseudo-failure: "has a node with >= 2 in-edges"; greedy deletion must
     reach a minimal witness (3 nodes, 2 edges) from a larger loop *)
  let g0 = Fz.loop_for_seed 3 in
  let fails g =
    Array.exists
      (fun (nd : Ts_ddg.Ddg.node) ->
        List.length g.Ts_ddg.Ddg.preds.(nd.id) >= 2)
      g.Ts_ddg.Ddg.nodes
  in
  check_bool "witness present in the seed loop" true (fails g0);
  let g = Fz.shrink ~budget:400 fails g0 in
  check_bool "still fails" true (fails g);
  check_bool
    (Printf.sprintf "shrank %d -> %d nodes" (Ts_ddg.Ddg.n_nodes g0)
       (Ts_ddg.Ddg.n_nodes g))
    true
    (Ts_ddg.Ddg.n_nodes g <= 3);
  (* and the result still parses back *)
  let txt = Ts_ddg.Parse.to_string g in
  check_int "round-trips" (Ts_ddg.Ddg.n_nodes g)
    (Ts_ddg.Ddg.n_nodes (Ts_ddg.Parse.of_string txt))

let suite =
  [
    Alcotest.test_case "times: valid accepted" `Quick test_check_times_accepts_valid;
    Alcotest.test_case "times: dependence violation" `Quick test_check_times_dependence;
    Alcotest.test_case "times: resource violation" `Quick test_check_times_resources;
    Alcotest.test_case "times: busy wrap-around" `Quick test_check_times_busy_wraparound;
    Alcotest.test_case "kernel: SMS validates" `Quick test_check_kernel_valid_sms;
    Alcotest.test_case "kernel: C1 claim" `Quick test_check_kernel_claim_c1;
    Alcotest.test_case "kernel: C2 claim" `Quick test_check_kernel_claim_c2;
    Alcotest.test_case "kernel: exn report" `Quick test_check_kernel_exn;
    Alcotest.test_case "fuzz: unit model streams" `Slow test_unit_models_clean;
    Alcotest.test_case "fuzz: loop generation" `Quick test_loop_generation_deterministic;
    Alcotest.test_case "fuzz: seeds clean" `Slow test_seeds_clean;
    Alcotest.test_case "fuzz: run (seq + parallel)" `Slow
      test_run_clean_and_parallel_deterministic;
    Alcotest.test_case "fuzz: band is live" `Quick test_band_catches_nonsense_estimate;
    Alcotest.test_case "fuzz: shrinker minimises" `Quick test_shrink_minimises;
  ]
