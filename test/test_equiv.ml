(* Golden equivalence: the optimised TMS search (incremental dependence
   masks, per-II ASAP cache, allocation-free admissibility, parallel
   sweep) must agree with the list-based seed implementation in
   [Ref_tms] on every observable: byte-identical kernels, exact [f_min],
   attempt counts and fallback flags. The float comparisons are
   intentionally exact ([=], no epsilon) — the optimised P_M product
   multiplies in the same edge order as the seed, so any drift is a bug.

   Also here: the sweep's metrics totals must not depend on the domain
   pool size (satellite of the same PR). *)

module K = Ts_modsched.Kernel

let params = Ts_isa.Spmt_params.default
let two_core = Ts_isa.Spmt_params.two_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_kernel name (expect : K.t) (got : K.t) =
  check_int (name ^ ": ii") expect.K.ii got.K.ii;
  Alcotest.(check (array int)) (name ^ ": issue times") expect.K.time got.K.time;
  Alcotest.(check (array int)) (name ^ ": rows") expect.K.row got.K.row;
  Alcotest.(check (array int)) (name ^ ": stages") expect.K.stage got.K.stage

let check_schedule name g ~params ~p_max =
  let r = Ts_tms.Tms.schedule ~p_max ~params g in
  let e = Ref_tms.schedule ~p_max ~params g in
  check_kernel name e.Ref_tms.kernel r.Ts_tms.Tms.kernel;
  Alcotest.(check (float 0.0)) (name ^ ": f_min") e.Ref_tms.f_min r.Ts_tms.Tms.f_min;
  check_int (name ^ ": attempts") e.Ref_tms.attempts r.Ts_tms.Tms.attempts;
  check_bool (name ^ ": fell_back") e.Ref_tms.fell_back r.Ts_tms.Tms.fell_back

let p_maxes = [ 0.0; 0.01; 0.05; 0.25; 1.0 ]

let test_motivating () =
  let g = Fixtures.motivating () in
  List.iter
    (fun p_max ->
      check_schedule (Printf.sprintf "motivating p_max=%g" p_max) g ~params ~p_max;
      check_schedule
        (Printf.sprintf "motivating/2core p_max=%g" p_max)
        g ~params:two_core ~p_max)
    p_maxes

let test_motivating_sweep () =
  let g = Fixtures.motivating () in
  let r = Ts_tms.Tms.schedule_sweep ~params g in
  let e = Ref_tms.schedule_sweep ~params g in
  check_kernel "sweep pick" e.Ref_tms.kernel r.Ts_tms.Tms.kernel;
  check_int "sweep attempts" e.Ref_tms.attempts r.Ts_tms.Tms.attempts

let test_spec_suite () =
  List.iter
    (fun (bench : Ts_workload.Spec_suite.bench) ->
      let loops = Ts_workload.Spec_suite.loops bench in
      List.iteri
        (fun i g ->
          if i < 2 then
            check_schedule
              (Printf.sprintf "%s[%d]" bench.name i)
              g ~params ~p_max:Ts_tms.Tms.default_p_max)
        loops)
    Ts_workload.Spec_suite.benchmarks

let test_doacross () =
  List.iter
    (fun (sel : Ts_workload.Doacross.selected) ->
      List.iteri
        (fun i g ->
          check_schedule
            (Printf.sprintf "doacross %s[%d]" sel.bench i)
            g ~params ~p_max:Ts_tms.Tms.default_p_max)
        sel.loops)
    Ts_workload.Doacross.all

(* 50 generated DDGs under fixed seeds, at varied sizes and P_max, both
   machine models. Covers fallback loops as well as schedulable ones. *)
let test_generated () =
  for seed = 0 to 49 do
    let n_inst = 8 + (seed mod 5 * 7) in
    let g = Fixtures.generated ~seed ~n_inst () in
    let p_max = List.nth p_maxes (seed mod List.length p_maxes) in
    let ps = if seed mod 2 = 0 then params else two_core in
    check_schedule
      (Printf.sprintf "gen seed=%d n=%d p_max=%g" seed n_inst p_max)
      g ~params:ps ~p_max
  done

(* The sweep's tms.* counters must total the same whatever the pool
   size: slot verdicts are flushed per attempt and the grid walk itself
   is unchanged, so jobs must only change who increments, never by how
   much. *)
let test_counters_jobs_invariant () =
  let loops =
    Fixtures.motivating ()
    :: List.init 6 (fun i -> Fixtures.generated ~seed:(100 + i) ~n_inst:18 ())
  in
  let names =
    [
      "tms.attempts"; "tms.schedules"; "tms.fallbacks"; "tms.slots.admitted";
      "tms.slots.resource_reject"; "tms.slots.c1_reject"; "tms.slots.c2_reject";
    ]
  in
  let totals jobs =
    Ts_obs.Metrics.reset Ts_obs.Metrics.default;
    ignore
      (Ts_base.Parallel.map ~jobs
         (fun g -> Ts_tms.Tms.schedule_sweep ~params g)
         loops);
    List.map
      (fun n ->
        Ts_obs.Metrics.counter_value (Ts_obs.Metrics.counter Ts_obs.Metrics.default n))
      names
  in
  let serial = totals 1 in
  let parallel = totals 4 in
  List.iter2
    (fun name (s, p) -> check_int ("counter " ^ name) s p)
    names
    (List.combine serial parallel);
  check_bool "attempts counted" true (List.hd serial > 0)

let suite =
  [
    Alcotest.test_case "motivating example = seed algorithm" `Quick test_motivating;
    Alcotest.test_case "sweep pick = seed algorithm" `Quick test_motivating_sweep;
    Alcotest.test_case "spec suite loops = seed algorithm" `Slow test_spec_suite;
    Alcotest.test_case "doacross loops = seed algorithm" `Slow test_doacross;
    Alcotest.test_case "50 generated loops = seed algorithm" `Slow test_generated;
    Alcotest.test_case "metrics totals independent of --jobs" `Quick
      test_counters_jobs_invariant;
  ]
