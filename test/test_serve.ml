(* ts_serve: the wire protocol (framing roundtrips, torn reads, bounded
   rejection of oversized frames, malformed JSON answered structurally)
   and the daemon end to end, in-process over a unix socket: schedule
   responses identical to a direct run, repeats served from the
   in-memory LRU without touching the store, shed-load under flood, and
   graceful shutdown. *)

module Pr = Ts_serve.Protocol
module Server = Ts_serve.Server
module Client = Ts_serve.Client
module J = Ts_obs.Json
module Cached = Ts_harness.Cached

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let cval name =
  Ts_obs.Metrics.counter_value
    (Ts_obs.Metrics.counter Ts_obs.Metrics.default name)

let has_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let dotprod_ddg =
  "loop dotprod\n\
   machine spmt\n\
   node lda   load\n\
   node ldb   load\n\
   node mul   fmul\n\
   node acc   fadd\n\
   node adr1  ialu\n\
   node adr2  ialu\n\
   node st    store\n\
   edge adr1 lda reg 0\n\
   edge adr2 ldb reg 0\n\
   edge lda mul reg 0\n\
   edge ldb mul reg 0\n\
   edge mul acc reg 0\n\
   edge acc acc reg 1\n\
   edge acc st reg 0\n\
   edge adr1 adr1 reg 1\n\
   edge adr2 adr2 reg 1\n\
   edge st lda mem 1 0.01\n"

(* ---- protocol framing -------------------------------------------------- *)

let test_frame_roundtrip () =
  let d = Pr.decoder () in
  Pr.feed d (Pr.encode_frame "hello");
  check_bool "one frame" true (Pr.next d = Some "hello");
  check_bool "then empty" true (Pr.next d = None);
  Pr.feed d (Pr.encode_frame "");
  check_bool "empty payload is a frame" true (Pr.next d = Some "");
  check_int "decoder drained" 0 (Pr.buffered d)

let test_torn_reads () =
  (* Byte-at-a-time delivery: no frame until the last byte arrives. *)
  let payload = "{\"id\":1,\"op\":\"ping\"}" in
  let wire = Pr.encode_frame payload in
  let d = Pr.decoder () in
  String.iteri
    (fun i ch ->
      Pr.feed d (String.make 1 ch);
      if i < String.length wire - 1 then
        check_bool
          (Printf.sprintf "no frame after %d/%d bytes" (i + 1) (String.length wire))
          true (Pr.next d = None))
    wire;
  check_bool "frame complete on final byte" true (Pr.next d = Some payload)

let test_many_frames_one_chunk () =
  (* Several frames plus a torn tail in a single feed. *)
  let f1 = Pr.encode_frame "one" and f2 = Pr.encode_frame "two" in
  let f3 = Pr.encode_frame "three" in
  let head = String.sub f3 0 5 in
  let tail = String.sub f3 5 (String.length f3 - 5) in
  let d = Pr.decoder () in
  Pr.feed d (f1 ^ f2 ^ head);
  check_bool "first" true (Pr.next d = Some "one");
  check_bool "second" true (Pr.next d = Some "two");
  check_bool "third not yet" true (Pr.next d = None);
  Pr.feed d tail;
  check_bool "third after tail" true (Pr.next d = Some "three")

let test_oversized_prefix_bounded () =
  let d = Pr.decoder ~max_frame:1024 () in
  (* A header announcing 256 MiB: must be rejected from the 4 header
     bytes alone, before any payload-sized buffer exists. *)
  let announced = 256 * 1024 * 1024 in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((announced lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((announced lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((announced lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (announced land 0xff);
  Pr.feed d (Bytes.to_string hdr);
  (match Pr.next d with
  | exception Pr.Frame_too_large n -> check_int "announced size reported" announced n
  | _ -> Alcotest.fail "oversized prefix accepted");
  check_bool "allocation bounded (only the header is held)" true (Pr.buffered d < 64);
  (* Sticky: the stream is unrecoverable, later calls keep raising. *)
  Pr.feed d "garbage";
  (match Pr.next d with
  | exception Pr.Frame_too_large _ -> ()
  | _ -> Alcotest.fail "poisoned decoder yielded a frame");
  check_bool "encode_frame refuses the same size" true
    (match Pr.encode_frame (String.make 1 'x') with
    | _ -> true (* small payloads fine; the limit check is on length *)
    | exception Invalid_argument _ -> false)

let test_request_json_roundtrip () =
  let req =
    {
      Pr.id = 42;
      op =
        Pr.Schedule
          { Pr.ddg = dotprod_ddg; cores = (8, [||]);
            placement = Ts_isa.Placement.Round_robin; p_max = Some 0.05;
            unroll = 2 };
      max_retries = Some 1;
      deadline_ms = Some 500;
    }
  in
  match Pr.request_of_json (Pr.request_to_json req) with
  | Ok r -> check_bool "roundtrip preserves the request" true (r = req)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_request_json_hetero () =
  (* A heterogeneous machine + explicit placement survive the wire
     ("cores" goes out as the mix string, "placement" as the policy
     name), and out-of-range or malformed machines are rejected at
     decode time — the trust boundary, not the simulator. *)
  let mix =
    match Ts_isa.Spmt_params.mix_of_string "2fast+2slow" with
    | Ok m -> m
    | Error e -> Alcotest.failf "mix rejected: %s" e
  in
  let req =
    {
      Pr.id = 7;
      op =
        Pr.Simulate
          { Pr.s_ddg = dotprod_ddg; s_cores = mix;
            s_placement = Ts_isa.Placement.Locality; trip = 300;
            warmup = 64 };
      max_retries = None;
      deadline_ms = None;
    }
  in
  (match Pr.request_of_json (Pr.request_to_json req) with
  | Ok r -> check_bool "hetero roundtrip" true (r = req)
  | Error e -> Alcotest.failf "hetero roundtrip failed: %s" e);
  let decode members =
    Pr.request_of_json
      (J.Obj
         ([ ("id", J.Int 1); ("op", J.Str "simulate");
            ("ddg", J.Str dotprod_ddg) ]
         @ members))
  in
  (match decode [ ("cores", J.Str "2fast+2slow") ] with
  | Ok { Pr.op = Pr.Simulate a; _ } ->
      check_bool "mix string accepted" true (a.Pr.s_cores = mix)
  | Ok _ -> Alcotest.fail "parsed to a different op"
  | Error e -> Alcotest.failf "mix string rejected: %s" e);
  List.iter
    (fun (what, members) ->
      match decode members with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" what)
    [
      ("cores = 0", [ ("cores", J.Int 0) ]);
      ("cores = 65", [ ("cores", J.Int 65) ]);
      ("cores = \"banana\"", [ ("cores", J.Str "banana") ]);
      ("placement = \"bogus\"", [ ("placement", J.Str "bogus") ]);
    ]

(* ---- in-process daemon ------------------------------------------------- *)

let fresh_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsms-test-serve-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

let with_server ?(max_inflight = 2) ?(queue_depth = 8) ?lru ?(store = false) f =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "s.sock" in
  Cached.set_lru lru;
  if store then
    Cached.set_store (Some (Ts_persist.open_store ~dir:(Filename.concat dir "cache")));
  let cfg =
    {
      (Server.default_config (Server.Unix_sock sock)) with
      Server.max_inflight;
      queue_depth;
      drain_timeout_s = 30.0;
    }
  in
  let t = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.run t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d;
      Cached.set_lru None;
      Cached.set_store None;
      rm dir)
    (fun () -> f (Server.bound_addr t))

let sched_req ?(id = 1) ?p_max () =
  {
    Pr.id;
    op =
      Pr.Schedule
        { Pr.ddg = dotprod_ddg; cores = (4, [||]);
          placement = Ts_isa.Placement.Round_robin; p_max; unroll = 1 };
    max_retries = None;
    deadline_ms = None;
  }

let expect_ok what = function
  | Ok resp when Pr.response_ok resp -> resp
  | Ok resp ->
      Alcotest.failf "%s: server error %s" what (J.to_string resp)
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let test_e2e_schedule_matches_direct () =
  with_server @@ fun addr ->
  let resp = expect_ok "schedule" (Client.round_trip addr (sched_req ())) in
  let g = Ts_ddg.Parse.of_string dotprod_ddg in
  let params = Ts_isa.Spmt_params.default in
  let direct = Ts_tms.Tms.schedule_sweep ~params g in
  let kj = Option.get (J.member "kernel" resp) in
  check_int "same II" direct.Ts_tms.Tms.kernel.Ts_modsched.Kernel.ii
    (Option.get (Option.bind (J.member "ii" kj) J.to_int));
  let time =
    match J.member "time" kj with
    | Some (J.List xs) -> List.map (fun x -> Option.get (J.to_int x)) xs
    | _ -> Alcotest.fail "no kernel.time"
  in
  check_bool "same row assignment" true
    (time = Array.to_list direct.Ts_tms.Tms.kernel.Ts_modsched.Kernel.time);
  let sj = Option.get (J.member "search" resp) in
  check_int "same attempts" direct.Ts_tms.Tms.attempts
    (Option.get (Option.bind (J.member "attempts" sj) J.to_int));
  (* The reconstructed kernel revalidates against the same DDG. *)
  let k =
    Ts_modsched.Kernel.of_times g
      ~ii:(Option.get (Option.bind (J.member "ii" kj) J.to_int))
      (Array.of_list time)
  in
  check_int "reconstructed kernel agrees" direct.Ts_tms.Tms.kernel.Ts_modsched.Kernel.ii
    k.Ts_modsched.Kernel.ii

let test_e2e_repeat_served_from_lru () =
  with_server ~lru:32 ~store:true @@ fun addr ->
  let r1 = expect_ok "first" (Client.round_trip addr (sched_req ())) in
  let hits0 = cval "lru.hits" in
  let p_hits0 = cval "persist.hits" and p_miss0 = cval "persist.misses" in
  let r2 = expect_ok "second" (Client.round_trip addr (sched_req ())) in
  check_bool "responses identical" true (J.to_string r1 = J.to_string r2);
  check_int "exactly one LRU hit" (hits0 + 1) (cval "lru.hits");
  check_int "no store read on the repeat" p_hits0 (cval "persist.hits");
  check_int "no store miss on the repeat" p_miss0 (cval "persist.misses")

let test_e2e_malformed_json_structured_error () =
  with_server @@ fun addr ->
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  Pr.write_frame fd "{this is not json";
  let resp =
    match Pr.read_frame fd with
    | Some payload -> Result.get_ok (J.parse payload)
    | None -> Alcotest.fail "connection died on malformed JSON"
  in
  check_bool "structured error" true (not (Pr.response_ok resp));
  (match Pr.response_error resp with
  | Some ("parse_error", _) -> ()
  | other ->
      Alcotest.failf "expected parse_error, got %s"
        (match other with Some (c, _) -> c | None -> "no error object"));
  (* Framing is still in sync: the connection keeps working. *)
  Pr.write_frame fd (J.to_string (Pr.request_to_json
    { Pr.id = 9; op = Pr.Ping; max_retries = None; deadline_ms = None }));
  (match Pr.read_frame fd with
  | Some payload ->
      let r = Result.get_ok (J.parse payload) in
      check_bool "ping still answered" true (Pr.response_ok r);
      check_bool "with its id" true (Pr.response_id r = Some 9)
  | None -> Alcotest.fail "connection dead after structured error")

let test_e2e_oversized_frame_answered_then_closed () =
  with_server @@ fun addr ->
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let announced = 512 * 1024 * 1024 in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((announced lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((announced lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((announced lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (announced land 0xff);
  ignore (Unix.write fd hdr 0 4);
  (match Pr.read_frame fd with
  | Some payload ->
      let r = Result.get_ok (J.parse payload) in
      (match Pr.response_error r with
      | Some ("parse_error", msg) ->
          check_bool "message names the limit" true (has_sub ~sub:"exceeds" msg)
      | _ -> Alcotest.fail "expected a parse_error response")
  | None -> Alcotest.fail "no error response before close");
  (* ... and then the stream closes (EOF), because framing is gone. *)
  check_bool "connection closed after oversized frame" true
    (match Pr.read_frame fd with
    | None -> true
    | Some _ -> false
    | exception End_of_file -> true)

let test_e2e_flood_sheds_never_crashes () =
  with_server ~max_inflight:1 ~queue_depth:0 @@ fun addr ->
  (* Hold every dispatched request inflight long enough for the rest of
     the pipelined flood to arrive — without this the compute path is
     fast enough (warm caches, arena simulator) to drain requests as
     quickly as the client writes them and nothing overflows. *)
  (match Ts_resil.Fault.parse "serve.request@*:slow300" with
  | Ok plan -> Ts_resil.Fault.arm plan
  | Error e -> Alcotest.failf "fault plan: %s" e);
  Fun.protect ~finally:Ts_resil.Fault.disarm @@ fun () ->
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n = 6 in
  (* Pipeline n compute requests back to back on one connection; with one
     execution slot and no queue, the loop must shed the overflow. *)
  let fd_reqs =
    List.init n (fun i ->
        J.to_string (Pr.request_to_json (sched_req ~id:(i + 1) ())))
  in
  (* Use the raw protocol to pipeline without waiting. *)
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  List.iter (Pr.write_frame fd) fd_reqs;
  let responses = ref [] in
  for _ = 1 to n do
    match Pr.read_frame fd with
    | Some payload -> responses := Result.get_ok (J.parse payload) :: !responses
    | None -> Alcotest.fail "connection died mid-flood"
  done;
  let oks = List.filter Pr.response_ok !responses in
  let sheds =
    List.filter
      (fun r -> match Pr.response_error r with Some ("shed_load", _) -> true | _ -> false)
      !responses
  in
  check_int "every request answered" n (List.length !responses);
  check_bool "some succeeded" true (List.length oks >= 1);
  check_bool "overflow was shed" true (List.length sheds >= 1);
  check_int "nothing lost or double-answered" n
    (List.length oks + List.length sheds);
  (* Control ops are never shed: the flooded server still answers. *)
  match Client.request c (Pr.request_to_json
    { Pr.id = 99; op = Pr.Health; max_retries = None; deadline_ms = None })
  with
  | Ok r -> check_bool "health during flood" true (Pr.response_ok r)
  | Error msg -> Alcotest.failf "health check failed under flood: %s" msg

let test_e2e_metrics_exposition () =
  with_server @@ fun addr ->
  let resp =
    expect_ok "metrics"
      (Client.round_trip addr
         { Pr.id = 3; op = Pr.Metrics; max_retries = None; deadline_ms = None })
  in
  let prom = Option.get (Option.bind (J.member "prom" resp) J.to_str) in
  check_bool "prometheus exposition includes server counters" true
    (has_sub ~sub:"tsms_serve_requests" prom);
  check_bool "includes gauges" true (has_sub ~sub:"tsms_serve_inflight" prom)

let test_e2e_graceful_shutdown () =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "s.sock" in
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let t = Server.create (Server.default_config (Server.Unix_sock sock)) in
  let d = Domain.spawn (fun () -> Server.run t) in
  let r =
    Client.round_trip (Server.Unix_sock sock)
      { Pr.id = 1; op = Pr.Ping; max_retries = None; deadline_ms = None }
  in
  check_bool "served before stop" true
    (match r with Ok resp -> Pr.response_ok resp | Error _ -> false);
  Server.stop t;
  Domain.join d;
  check_bool "socket file removed" false (Sys.file_exists sock);
  (* A second stop is harmless. *)
  Server.stop t

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_e2e_shutdown_under_load_no_fd_leak () =
  if not (Sys.file_exists "/proc/self/fd") then ()
  else begin
    (* Warm everything that lazily allocates (pool domains, scheduler
       caches) so the fd baseline below is stable. *)
    ignore
      (Ts_tms.Tms.schedule_sweep ~params:Ts_isa.Spmt_params.default
         (Ts_ddg.Parse.of_string dotprod_ddg));
    let dir = fresh_dir () in
    let sock = Filename.concat dir "s.sock" in
    Fun.protect
      ~finally:(fun () ->
        Ts_resil.Fault.disarm ();
        rm dir)
    @@ fun () ->
    (* Every compute request sleeps well past the drain deadline, so
       stopping mid-request forces the graveyard path. *)
    (match Ts_resil.Fault.parse "serve.request@*:slow600" with
    | Ok plan -> Ts_resil.Fault.arm plan
    | Error e -> Alcotest.failf "fault plan: %s" e);
    let gy0 = cval "serve.graveyard" in
    let baseline = count_fds () in
    let cfg =
      {
        (Server.default_config (Server.Unix_sock sock)) with
        Server.drain_timeout_s = 0.05;
      }
    in
    let t = Server.create cfg in
    let d = Domain.spawn (fun () -> Server.run t) in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let client_closed = ref false in
    let close_client () =
      if not !client_closed then begin
        client_closed := true;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
    in
    Fun.protect ~finally:close_client @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let accepted0 = cval "serve.accepted" in
    Pr.write_frame fd (J.to_string (Pr.request_to_json (sched_req ~id:7 ())));
    (* Wait until the request is actually dispatched to a worker. *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    while cval "serve.accepted" = accepted0 && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    check_bool "request dispatched" true (cval "serve.accepted" > accepted0);
    (* Stop with the request still sleeping: drain (50 ms) expires long
       before the 600 ms injected delay, so the connection must take the
       graveyard path rather than leak. *)
    Server.stop t;
    Domain.join d;
    (* The straggler's response is still written after shutdown... *)
    (match Pr.read_frame fd with
    | Some payload ->
        let r = Result.get_ok (J.parse payload) in
        check_bool "late response delivered" true (Pr.response_ok r);
        check_bool "with its id" true (Pr.response_id r = Some 7)
    | None -> Alcotest.fail "straggler response lost in shutdown");
    (* ... and then the server closes the fd (EOF, not a hang). *)
    check_bool "straggler closed after its response" true
      (match Pr.read_frame fd with
      | None -> true
      | Some _ -> false
      | exception End_of_file -> true);
    close_client ();
    check_bool "graveyard counted the straggler" true
      (cval "serve.graveyard" > gy0);
    (* Every server-side descriptor — listener, conn, self-pipe — is
       back: poll briefly, the pipe close trails the conn close. *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    while count_fds () > baseline && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.02
    done;
    check_int "no fd growth after shutdown under load" baseline (count_fds ())
  end

let test_addr_parsing () =
  let ok s expect =
    match Server.addr_of_string s with
    | Ok a -> check_string ("parse " ^ s) expect (Server.addr_to_string a)
    | Error e -> Alcotest.failf "parse %s: %s" s e
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "tcp:localhost:700" "tcp:localhost:700";
  ok "127.0.0.1:7433" "tcp:127.0.0.1:7433";
  ok "7433" "tcp:127.0.0.1:7433";
  List.iter
    (fun s ->
      check_bool ("reject " ^ s) true
        (match Server.addr_of_string s with Error _ -> true | Ok _ -> false))
    [ "unix:"; "tcp:nohost"; "host:notaport"; "99999"; "" ]

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "torn byte-at-a-time reads" `Quick test_torn_reads;
    Alcotest.test_case "many frames, one chunk" `Quick test_many_frames_one_chunk;
    Alcotest.test_case "oversized prefix rejected, bounded" `Quick
      test_oversized_prefix_bounded;
    Alcotest.test_case "request json roundtrip" `Quick test_request_json_roundtrip;
    Alcotest.test_case "request json: hetero machine + placement" `Quick
      test_request_json_hetero;
    Alcotest.test_case "addr parsing" `Quick test_addr_parsing;
    Alcotest.test_case "e2e: schedule = direct result" `Quick
      test_e2e_schedule_matches_direct;
    Alcotest.test_case "e2e: repeat served from LRU" `Quick
      test_e2e_repeat_served_from_lru;
    Alcotest.test_case "e2e: malformed JSON structured error" `Quick
      test_e2e_malformed_json_structured_error;
    Alcotest.test_case "e2e: oversized frame answered then closed" `Quick
      test_e2e_oversized_frame_answered_then_closed;
    Alcotest.test_case "e2e: flood sheds, never crashes" `Quick
      test_e2e_flood_sheds_never_crashes;
    Alcotest.test_case "e2e: metrics exposition" `Quick test_e2e_metrics_exposition;
    Alcotest.test_case "e2e: graceful shutdown" `Quick test_e2e_graceful_shutdown;
    Alcotest.test_case "e2e: shutdown under load leaks no fds" `Quick
      test_e2e_shutdown_under_load_no_fd_leak;
  ]
