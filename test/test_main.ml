let () =
  Alcotest.run "tsms"
    [
      ("rng", Test_rng.suite);
      ("base", Test_base.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("isa", Test_isa.suite);
      ("ddg", Test_ddg.suite);
      ("scc+mii", Test_scc_mii.suite);
      ("parse+dot", Test_parse.suite);
      ("mrt", Test_mrt.suite);
      ("sched", Test_sched.suite);
      ("kernel", Test_kernel.suite);
      ("order+sms", Test_order_sms.suite);
      ("cost-model", Test_cost_model.suite);
      ("tms", Test_tms.suite);
      ("tms-equiv", Test_equiv.suite);
      ("cache+mdt", Test_cache_mdt.suite);
      ("sim", Test_sim.suite);
      ("placement", Test_placement.suite);
      ("workload", Test_workload.suite);
      ("harness", Test_harness.suite);
      ("persist", Test_persist.suite);
      ("resil", Test_resil.suite);
      ("serve", Test_serve.suite);
      ("extensions", Test_extensions.suite);
      ("profile+slices", Test_profile.suite);
      ("fuzz+check", Fuzz_check.suite);
    ]
