(* Ts_resil (deterministic fault injection + supervised sweeps) and the
   degradation paths it drives through Ts_persist, Cached and the
   harness: plan parsing, occurrence counters, retry/backoff determinism,
   full failure aggregation, keep-going sweeps, every persist degradation
   (write, torn, read, rename, journal write, fingerprint discard), and
   the property that an injected-fault run whose retries succeed is
   bit-identical to a fault-free run. *)

module F = Ts_resil.Fault
module S = Ts_resil.Supervise
module W = Ts_resil.Warn
module P = Ts_persist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let cval name =
  Ts_obs.Metrics.counter_value
    (Ts_obs.Metrics.counter Ts_obs.Metrics.default name)

let has_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Every test runs against clean resilience state and leaves it clean:
   injection plans, warn-once memory, the sleep hook and the run context
   are all process-wide. *)
let scrub f () =
  let reset () =
    F.disarm ();
    F.set_sleep None;
    W.set_sink None;
    W.reset ();
    S.set_keep_going false;
    S.set_policy S.default_policy;
    S.reset_failures ();
    Ts_harness.Cached.set_store None
  in
  reset ();
  Fun.protect ~finally:reset f

let with_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsms-test-resil-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.file_exists p then
          if Sys.is_directory p then begin
            Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
            Sys.rmdir p
          end
          else Sys.remove p
      in
      rm dir)
    (fun () -> f (P.open_store ~dir))

(* A capturing warn sink: returns the recorder and the captured list. *)
let capture_warnings () =
  let seen = ref [] in
  W.set_sink (Some (fun msg -> seen := msg :: !seen));
  fun () -> List.rev !seen

(* A recording sleep hook (backoff and Slow faults become observable and
   instantaneous). *)
let capture_sleeps () =
  let slept = ref [] in
  F.set_sleep (Some (fun s -> slept := s :: !slept));
  fun () -> List.rev !slept

let arm_ok s =
  match F.parse s with
  | Ok plan -> F.arm plan
  | Error e -> Alcotest.failf "plan %S did not parse: %s" s e

(* ---- plan format ---- *)

let test_plan_roundtrip () =
  let src = "persist.write@*,worker@3,worker@*#1,persist.write@2:torn,worker@1:slow50" in
  match F.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok plan ->
      check_string "to_string" src (F.to_string plan);
      (match F.parse (F.to_string plan) with
      | Ok plan' -> check_bool "roundtrip" true (plan = plan')
      | Error e -> Alcotest.failf "reparse: %s" e);
      check_bool "empty plan" true (F.parse "" = Ok []);
      (* Entry shapes. *)
      (match plan with
      | [ e1; e2; e3; e4; e5 ] ->
          check_bool "e1" true
            (e1 = { F.point = "persist.write"; key = None; attempt = None; kind = F.Exn });
          check_bool "e2" true
            (e2 = { F.point = "worker"; key = Some 3; attempt = None; kind = F.Exn });
          check_bool "e3" true
            (e3 = { F.point = "worker"; key = None; attempt = Some 1; kind = F.Exn });
          check_bool "e4" true
            (e4 = { F.point = "persist.write"; key = Some 2; attempt = None; kind = F.Torn });
          check_bool "e5" true
            (e5 = { F.point = "worker"; key = Some 1; attempt = None; kind = F.Slow 50 })
      | _ -> Alcotest.fail "expected 5 entries")

let test_plan_errors () =
  let bad s = check_bool s true (Result.is_error (F.parse s)) in
  bad "nokey";
  bad "@3";
  bad "worker@x";
  bad "worker@1#0";
  bad "worker@1#x";
  bad "worker@1:weird";
  bad "worker@1:slowx"

let test_seeded_deterministic () =
  let a = F.seeded ~seed:7 ~point:"persist.write" ~n:3 ~out_of:50 in
  let b = F.seeded ~seed:7 ~point:"persist.write" ~n:3 ~out_of:50 in
  check_bool "same seed, same plan" true (a = b);
  check_int "n entries" 3 (List.length a);
  List.iter
    (fun (e : F.entry) ->
      check_string "point" "persist.write" e.point;
      match e.key with
      | Some k -> check_bool "key in range" true (k >= 1 && k <= 50)
      | None -> Alcotest.fail "seeded entries are keyed")
    a;
  let c = F.seeded ~seed:8 ~point:"persist.write" ~n:3 ~out_of:50 in
  check_bool "different seed differs" true (a <> c)

(* ---- occurrence counters and task points ---- *)

let test_counter_point () =
  arm_ok "persist.write@2";
  check_bool "occurrence 1 clean" true (F.check "persist.write" = None);
  check_bool "occurrence 2 fires" true (F.check "persist.write" = Some F.Exn);
  check_bool "occurrence 3 clean" true (F.check "persist.write" = None);
  check_bool "other point untouched" true (F.check "persist.read" = None);
  (* Re-arming resets the occurrence counters. *)
  arm_ok "persist.write@2";
  check_bool "counters reset on arm" true (F.check "persist.write" = None);
  check_bool "then fires again" true (F.check "persist.write" = Some F.Exn);
  F.disarm ();
  check_bool "disarmed is a no-op" true (F.check "persist.write" = None)

let test_star_key () =
  arm_ok "persist.write@*:torn";
  check_bool "every occurrence" true
    (List.init 5 (fun _ -> F.check "persist.write")
    |> List.for_all (( = ) (Some F.Torn)))

let test_task_point () =
  arm_ok "worker@3#2";
  check_bool "wrong attempt" true (F.check_task "worker" ~index:3 ~attempt:1 = None);
  check_bool "right attempt" true
    (F.check_task "worker" ~index:3 ~attempt:2 = Some F.Exn);
  check_bool "wrong index" true (F.check_task "worker" ~index:2 ~attempt:2 = None);
  arm_ok "worker@*#1";
  check_bool "star index, attempt 1" true
    (F.check_task "worker" ~index:9 ~attempt:1 = Some F.Exn);
  check_bool "star index, attempt 2" true
    (F.check_task "worker" ~index:9 ~attempt:2 = None)

let test_arm_from_env () =
  Fun.protect
    ~finally:(fun () -> Unix.putenv "TSMS_FAULT_PLAN" "")
    (fun () ->
      Unix.putenv "TSMS_FAULT_PLAN" "worker@1";
      check_bool "good plan arms" true (F.arm_from_env () = Ok ());
      check_bool "armed" true (F.armed ());
      F.disarm ();
      Unix.putenv "TSMS_FAULT_PLAN" "not-a-plan";
      check_bool "bad plan is an error" true (Result.is_error (F.arm_from_env ()));
      Unix.putenv "TSMS_FAULT_PLAN" "";
      check_bool "empty is ok" true (F.arm_from_env () = Ok ()))

(* ---- warn-once ---- *)

let test_warn_once () =
  let got = capture_warnings () in
  W.once ~key:"k1" "first";
  W.once ~key:"k1" "repeat";
  W.once ~key:"k2" "second";
  check_bool "one message per key" true (got () = [ "first"; "second" ]);
  W.reset ();
  W.once ~key:"k1" "again";
  check_bool "reset forgets keys" true (got () = [ "first"; "second"; "again" ])

(* ---- supervised retries and backoff ---- *)

let test_retry_converges () =
  let sleeps = capture_sleeps () in
  arm_ok "worker@*#1";
  let policy = { S.max_retries = 2; backoff_ms = 40; deadline_ms = None } in
  let r0 = cval "supervise.retries" in
  let results = S.map ~jobs:1 ~policy (fun x -> 2 * x) [ 10; 20; 30 ] in
  check_bool "all tasks converge on retry" true
    (results = [ Ok 20; Ok 40; Ok 60 ]);
  check_int "one retry per task" 3 (cval "supervise.retries" - r0);
  check_bool "deterministic first backoff" true
    (sleeps () = [ 0.04; 0.04; 0.04 ])

let test_backoff_sequence () =
  check_bool "delays" true
    (S.backoff_delays_ms { S.max_retries = 3; backoff_ms = 50; deadline_ms = None }
    = [ 50; 100; 200 ]);
  let sleeps = capture_sleeps () in
  arm_ok "worker@0";
  let policy = { S.max_retries = 3; backoff_ms = 10; deadline_ms = None } in
  let f0 = cval "supervise.failures" in
  (match S.map ~jobs:1 ~policy ~label:(fun i -> Printf.sprintf "t%d" i) Fun.id [ 1 ] with
  | [ Error f ] ->
      check_int "attempts = 1 + retries" 4 f.S.attempts;
      check_string "label" "t0" f.S.label;
      check_int "index" 0 f.S.index
  | _ -> Alcotest.fail "expected one failure");
  check_int "one failure counted" 1 (cval "supervise.failures" - f0);
  check_bool "exponential backoff recorded" true (sleeps () = [ 0.01; 0.02; 0.04 ])

let test_aggregates_all_failures () =
  arm_ok "worker@1,worker@3";
  let run jobs =
    S.map ~jobs (fun x -> x * x) [ 0; 1; 2; 3; 4; 5 ]
    |> List.map (function Ok v -> `Ok v | Error (f : S.failure) -> `Fail f.index)
  in
  let want = [ `Ok 0; `Fail 1; `Ok 4; `Fail 3; `Ok 16; `Ok 25 ] in
  check_bool "sequential: every failure, every survivor" true (run 1 = want);
  check_bool "pooled: identical outcomes" true (run 4 = want)

let test_parallel_map_errors () =
  let f x = if x mod 2 = 0 then failwith ("boom " ^ string_of_int x) else x in
  let indices jobs =
    match Ts_base.Parallel.map ~jobs f [ 2; 1; 4; 3; 6 ] with
    | _ -> Alcotest.fail "expected Map_errors"
    | exception Ts_base.Parallel.Map_errors ies -> List.map fst ies
  in
  check_bool "all failing indices, ascending (jobs=1)" true (indices 1 = [ 0; 2; 4 ]);
  check_bool "all failing indices, ascending (jobs=4)" true (indices 4 = [ 0; 2; 4 ]);
  check_bool "clean map still works" true
    (Ts_base.Parallel.map ~jobs:4 f [ 1; 3; 5 ] = [ 1; 3; 5 ])

let test_failures_of_exn () =
  let f = { S.index = 2; label = "x"; attempts = 1; error = "e" } in
  check_bool "Failures direct" true (S.failures_of_exn (S.Failures [ f ]) = Some [ f ]);
  (match S.failures_of_exn (Ts_base.Parallel.Map_errors [ (1, Failure "raw") ]) with
  | Some [ g ] ->
      check_int "index from pool" 1 g.S.index;
      check_bool "error text" true (g.S.error = Printexc.to_string (Failure "raw"))
  | _ -> Alcotest.fail "Map_errors not recognised");
  (match
     S.failures_of_exn (Ts_base.Parallel.Map_errors [ (0, S.Failures [ f ]) ])
   with
  | Some [ g ] -> check_bool "nested Failures flattened" true (g = f)
  | _ -> Alcotest.fail "nested Failures not flattened");
  check_bool "other exceptions pass" true (S.failures_of_exn Exit = None)

(* ---- keep-going sweeps ---- *)

let test_sweep_raises_all () =
  arm_ok "worker@1,worker@4";
  match
    S.sweep_map ~what:"t" ~label:(fun _ x -> string_of_int x) Fun.id [ 5; 6; 7; 8; 9 ]
  with
  | _ -> Alcotest.fail "expected Failures"
  | exception S.Failures fs ->
      check_int "both failures aggregated" 2 (List.length fs);
      check_bool "labels carry what/" true
        (List.map (fun (f : S.failure) -> f.label) fs = [ "t/6"; "t/9" ])

let test_sweep_keep_going () =
  S.set_keep_going true;
  arm_ok "worker@2";
  let out =
    S.sweep_map ~what:"t" ~label:(fun _ x -> string_of_int x) (fun x -> 10 * x)
      [ 1; 2; 3; 4 ]
  in
  check_bool "survivors kept, casualty None" true
    (out = [ Some 10; Some 20; None; Some 40 ]);
  (match S.failures () with
  | [ f ] ->
      check_string "recorded label" "t/3" f.S.label;
      check_int "recorded index" 2 f.S.index
  | fs -> Alcotest.failf "expected 1 recorded failure, got %d" (List.length fs));
  (match S.summary () with
  | Some s ->
      check_bool "summary names the task" true
        (has_sub ~sub:"t/3" s)
  | None -> Alcotest.fail "expected a summary");
  S.reset_failures ();
  check_bool "reset clears the summary" true (S.summary () = None)

(* ---- persist degradation ---- *)

let test_store_write_degrades () =
  with_store (fun s ->
      let got = capture_warnings () in
      arm_ok "persist.write@1";
      let d0 = cval "persist.degraded" in
      let key = P.digest_hex "w" in
      P.store s ~key 42;
      check_bool "failed write is a miss" true ((P.find s ~key : int option) = None);
      check_int "persist.degraded" 1 (cval "persist.degraded" - d0);
      check_int "warned once" 1 (List.length (got ()));
      (* The next write (occurrence 2) is clean: the run stays usable. *)
      P.store s ~key 42;
      check_bool "later write lands" true (P.find s ~key = Some 42);
      check_int "no second warning" 1 (List.length (got ())))

let test_store_torn_write () =
  with_store (fun s ->
      arm_ok "persist.write@1:torn";
      let d0 = cval "persist.degraded" in
      let key = P.digest_hex "torn" in
      P.store s ~key [ 1; 2; 3 ];
      (* The torn entry landed on disk but fails its digest: a miss, and
         the corrupt file is removed. *)
      check_bool "torn entry reads as a miss" true
        ((P.find s ~key : int list option) = None);
      check_int "torn is not a degrade" 0 (cval "persist.degraded" - d0);
      P.store s ~key [ 1; 2; 3 ];
      check_bool "rewrite heals" true (P.find s ~key = Some [ 1; 2; 3 ]))

let test_read_fault_is_miss () =
  with_store (fun s ->
      let key = P.digest_hex "r" in
      P.store s ~key "v";
      arm_ok "persist.read@1";
      check_bool "injected read error is a miss" true
        ((P.find s ~key : string option) = None);
      (* The miss deleted the unreadable entry (by design); recompute+store
         brings it back and the next read is clean. *)
      P.store s ~key "v";
      check_bool "subsequent read hits" true (P.find s ~key = Some "v"))

let test_rename_fault_degrades () =
  with_store (fun s ->
      let got = capture_warnings () in
      arm_ok "persist.rename@1";
      let d0 = cval "persist.degraded" in
      let key = P.digest_hex "mv" in
      P.store s ~key 7;
      check_bool "failed rename is a miss" true ((P.find s ~key : int option) = None);
      check_int "persist.degraded" 1 (cval "persist.degraded" - d0);
      check_int "warned once" 1 (List.length (got ())))

let test_open_fault_raises () =
  arm_ok "persist.open@1";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsms-test-resil-open-%d" (Unix.getpid ()))
  in
  check_bool "open_store raises the injected fault" true
    (match P.open_store ~dir with
    | _ -> false
    | exception F.Injected "persist.open" -> true)

let test_journal_write_degrades () =
  with_store (fun s ->
      let got = capture_warnings () in
      let j = P.Journal.load s ~name:"sw" ~fingerprint:"fp" ~resume:false in
      P.Journal.record j ~id:"a" 1;
      arm_ok "journal.write@1";
      let d0 = cval "persist.journal.degraded" in
      P.Journal.record j ~id:"b" 2;
      check_int "journal degraded" 1 (cval "persist.journal.degraded" - d0);
      check_int "warned once" 1 (List.length (got ()));
      (* Degraded means journal-less, not dead: later records are dropped
         silently and the sweep itself goes on. *)
      P.Journal.record j ~id:"c" 3;
      check_int "no second warning" 1 (List.length (got ()));
      (* Only the record before the failure survives for a resume. *)
      let j2 = P.Journal.load s ~name:"sw" ~fingerprint:"fp" ~resume:true in
      check_bool "pre-failure record replays" true (P.Journal.find j2 ~id:"a" = Some 1);
      check_bool "post-failure records lost" true
        ((P.Journal.find j2 ~id:"b" : int option) = None
        && (P.Journal.find j2 ~id:"c" : int option) = None);
      P.Journal.finish j2)

let test_journal_fingerprint_discard () =
  with_store (fun s ->
      let j = P.Journal.load s ~name:"sw" ~fingerprint:"config-A" ~resume:false in
      P.Journal.record j ~id:"loop1" 11;
      P.Journal.record j ~id:"loop2" 22;
      (* Simulate the interrupted run ending without finish. *)
      let got = capture_warnings () in
      let d0 = cval "persist.journal.discarded" in
      let j2 = P.Journal.load s ~name:"sw" ~fingerprint:"config-B" ~resume:true in
      check_bool "stale items are not replayed" true
        ((P.Journal.find j2 ~id:"loop1" : int option) = None);
      check_int "discard counted" 1 (cval "persist.journal.discarded" - d0);
      (match got () with
      | [ msg ] ->
          let has sub = has_sub ~sub msg in
          check_bool "warning names the journal file" true (has "sw.j");
          check_bool "warning counts the stale items" true
            (has "2 completed item(s)")
      | msgs -> Alcotest.failf "expected 1 warning, got %d" (List.length msgs));
      P.Journal.finish j2)

let test_default_dir_absolute () =
  let saved =
    List.map
      (fun k -> (k, Sys.getenv_opt k))
      [ "TSMS_CACHE_DIR"; "XDG_CACHE_HOME"; "HOME" ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (k, v) -> Unix.putenv k (Option.value v ~default:""))
        saved)
    (fun () ->
      Unix.putenv "TSMS_CACHE_DIR" "rel-cache";
      let d = P.default_dir () in
      check_bool "relative TSMS_CACHE_DIR absolutised" true
        (not (Filename.is_relative d));
      check_bool "still points at the named directory" true
        (Filename.basename d = "rel-cache");
      (* No HOME at all: the cwd fallback, warned once. *)
      Unix.putenv "TSMS_CACHE_DIR" "";
      Unix.putenv "XDG_CACHE_HOME" "";
      Unix.putenv "HOME" "";
      let got = capture_warnings () in
      let d = P.default_dir () in
      check_bool "fallback is absolute" true (not (Filename.is_relative d));
      check_bool "fallback is _tsms_cache" true
        (Filename.basename d = "_tsms_cache");
      check_int "fallback warned" 1 (List.length (got ())))

(* ---- cached reconstruction ---- *)

let test_cached_reconstruct_fault () =
  with_store (fun s ->
      Ts_harness.Cached.set_store (Some s);
      let g = Ts_workload.Motivating.ddg () in
      let first = Ts_harness.Cached.sms g in
      arm_ok "cached.reconstruct@1";
      let r0 = cval "persist.reconstruct_failed" in
      let second = Ts_harness.Cached.sms g in
      check_int "reconstruction failure counted" 1
        (cval "persist.reconstruct_failed" - r0);
      check_bool "recompute returns the same schedule" true
        (second.Ts_sms.Sms.kernel.Ts_modsched.Kernel.time
        = first.Ts_sms.Sms.kernel.Ts_modsched.Kernel.time);
      F.disarm ();
      let third = Ts_harness.Cached.sms g in
      check_bool "cache healed" true
        (third.Ts_sms.Sms.kernel.Ts_modsched.Kernel.time
        = first.Ts_sms.Sms.kernel.Ts_modsched.Kernel.time))

(* ---- deadlines (report-only) ---- *)

let test_deadline_report_only () =
  let got = capture_warnings () in
  let policy = { S.max_retries = 0; backoff_ms = 1; deadline_ms = Some 1 } in
  let d0 = cval "supervise.deadline_exceeded" in
  let results =
    S.map ~jobs:1 ~policy ~label:(fun i -> Printf.sprintf "slow%d" i)
      (fun x ->
        Unix.sleepf 0.005;
        x + 1)
      [ 41 ]
  in
  check_bool "overrunning result is kept" true (results = [ Ok 42 ]);
  check_int "deadline overrun counted" 1 (cval "supervise.deadline_exceeded" - d0);
  match got () with
  | [ msg ] ->
      check_bool "warning names the task and says kept" true
        (has_sub ~sub:"slow0" msg
        && has_sub ~sub:"result kept" msg)
  | msgs -> Alcotest.failf "expected 1 warning, got %d" (List.length msgs)

(* ---- convergence: injected faults + retries = fault-free ---- *)

let test_retry_run_bit_identical () =
  let xs = List.init 8 (fun i -> i) in
  let f x = (x * x) + (3 * x) in
  let clean = S.sweep_map ~what:"c" ~label:(fun i _ -> string_of_int i) f xs in
  let (_ : unit -> float list) = capture_sleeps () in
  arm_ok "worker@*#1";
  S.set_policy { S.max_retries = 1; backoff_ms = 10; deadline_ms = None };
  let faulty = S.sweep_map ~what:"c" ~label:(fun i _ -> string_of_int i) f xs in
  check_bool "every-first-attempt faults + one retry = fault-free" true
    (faulty = clean);
  check_bool "no failures recorded" true (S.failures () = [])

let test_keep_going_survivors_identical () =
  let xs = List.init 6 (fun i -> 100 + i) in
  let f x = x * 7 in
  let clean = S.sweep_map ~what:"k" ~label:(fun i _ -> string_of_int i) f xs in
  arm_ok "worker@2,worker@5";
  S.set_keep_going true;
  let faulty = S.sweep_map ~what:"k" ~label:(fun i _ -> string_of_int i) f xs in
  List.iteri
    (fun i (c, fv) ->
      if i = 2 || i = 5 then check_bool "casualty is None" true (fv = None)
      else check_bool "survivor identical to fault-free" true (fv = c))
    (List.combine clean faulty);
  check_int "both casualties recorded" 2 (List.length (S.failures ()))

(* The harness-level version of the same property: a keep-going
   Suite.run_bench with a persistent per-index fault drops exactly that
   loop and schedules the survivors identically to a fault-free run. *)
let test_harness_keep_going () =
  let params = Ts_isa.Spmt_params.default in
  let bench = Ts_workload.Spec_suite.find "swim" in
  let clean = Ts_harness.Suite.run_bench ~limit:2 ~params bench in
  check_int "2 fault-free loops" 2 (List.length clean);
  arm_ok "worker@0";
  S.set_keep_going true;
  let faulty = Ts_harness.Suite.run_bench ~limit:2 ~params bench in
  check_int "loop 0 dropped" 1 (List.length faulty);
  let kernel_time (r : Ts_harness.Suite.loop_run) =
    ( r.sms.Ts_sms.Sms.kernel.Ts_modsched.Kernel.time,
      r.tms.Ts_tms.Tms.kernel.Ts_modsched.Kernel.time )
  in
  check_bool "survivor bit-identical to fault-free" true
    (kernel_time (List.hd faulty) = kernel_time (List.nth clean 1));
  match S.failures () with
  | [ f ] ->
      check_bool "failure labelled with sweep and loop" true
        (has_sub ~sub:"suite:swim/" f.S.label)
  | fs -> Alcotest.failf "expected 1 recorded failure, got %d" (List.length fs)

(* --- domain-safety hammers ---

   Warn.once and the supervision counters/failure log are shared by
   every pool worker; hammer them from 4 real domains and require exact
   counts — a racy Hashtbl or ref would lose or duplicate entries. *)

let test_warn_once_hammer () =
  let lock = Mutex.create () in
  let seen = ref [] in
  W.set_sink
    (Some
       (fun msg ->
         Mutex.lock lock;
         seen := msg :: !seen;
         Mutex.unlock lock));
  let n_keys = 100 in
  let doms =
    List.init 4 (fun _d ->
        Domain.spawn (fun () ->
            for _round = 0 to 9 do
              for k = 0 to n_keys - 1 do
                W.once ~key:(Printf.sprintf "hammer-%d" k)
                  (Printf.sprintf "warning %d" k)
              done
            done))
  in
  List.iter Domain.join doms;
  let lines = List.sort_uniq compare !seen in
  check_int "each key warned exactly once" n_keys (List.length !seen);
  check_int "all keys distinct" n_keys (List.length lines);
  (* And the table still works after the stampede. *)
  W.once ~key:"hammer-0" "suppressed";
  check_int "old keys still suppressed" n_keys (List.length !seen);
  W.once ~key:"hammer-after" "fresh";
  check_int "fresh key emits" (n_keys + 1) (List.length !seen)

let test_attempt_task_hammer () =
  let (_ : unit -> float list) = capture_sleeps () in
  let retries0 = cval "supervise.retries" in
  let failures0 = cval "supervise.failures" in
  let policy = { S.default_policy with S.max_retries = 1 } in
  let per = 50 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.init per (fun i ->
                let label = Printf.sprintf "hammer/%d/%d" d i in
                S.attempt_task ~policy ~point:"hammer.point" ~label ~index:i
                  (fun () -> failwith label)
                  ())))
  in
  let results = List.concat_map Domain.join doms in
  check_int "every task failed" (4 * per) (List.length results);
  List.iter
    (fun r ->
      match r with
      | Error f ->
          check_int "attempts = 1 + max_retries" 2 f.S.attempts;
          check_bool "failure carries its own label" true
            (has_sub ~sub:"hammer/" f.S.label && has_sub ~sub:f.S.label f.S.error)
      | Ok () -> Alcotest.fail "a failing task reported success")
    results;
  check_int "one retry counted per task, none lost" (4 * per)
    (cval "supervise.retries" - retries0);
  check_int "one failure counted per task, none lost" (4 * per)
    (cval "supervise.failures" - failures0);
  (* The keep-going failure log aggregates from all domains too. *)
  S.reset_failures ();
  S.set_keep_going true;
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            ignore
              (S.sweep_map ~what:"hammer" ~jobs:1
                 ~label:(fun i _ -> string_of_int i)
                 (fun i -> if i = 1 then failwith "boom" else i)
                 [ 0; 1; 2 ])))
  in
  List.iter Domain.join doms;
  check_int "all concurrent sweep failures recorded" 4
    (List.length (S.failures ()))

let suite =
  [
    Alcotest.test_case "fault: plan roundtrip" `Quick (scrub test_plan_roundtrip);
    Alcotest.test_case "warn: once under 4-domain hammer" `Quick
      (scrub test_warn_once_hammer);
    Alcotest.test_case "supervise: counters under 4-domain hammer" `Quick
      (scrub test_attempt_task_hammer);
    Alcotest.test_case "fault: plan errors" `Quick (scrub test_plan_errors);
    Alcotest.test_case "fault: seeded plans deterministic" `Quick
      (scrub test_seeded_deterministic);
    Alcotest.test_case "fault: counter points" `Quick (scrub test_counter_point);
    Alcotest.test_case "fault: * matches every occurrence" `Quick
      (scrub test_star_key);
    Alcotest.test_case "fault: task points" `Quick (scrub test_task_point);
    Alcotest.test_case "fault: TSMS_FAULT_PLAN" `Quick (scrub test_arm_from_env);
    Alcotest.test_case "warn: once per key" `Quick (scrub test_warn_once);
    Alcotest.test_case "supervise: retry converges" `Quick
      (scrub test_retry_converges);
    Alcotest.test_case "supervise: deterministic backoff" `Quick
      (scrub test_backoff_sequence);
    Alcotest.test_case "supervise: aggregates all failures" `Quick
      (scrub test_aggregates_all_failures);
    Alcotest.test_case "parallel: Map_errors aggregates" `Quick
      (scrub test_parallel_map_errors);
    Alcotest.test_case "supervise: failures_of_exn" `Quick
      (scrub test_failures_of_exn);
    Alcotest.test_case "sweep: raises all failures" `Quick
      (scrub test_sweep_raises_all);
    Alcotest.test_case "sweep: keep-going records and continues" `Quick
      (scrub test_sweep_keep_going);
    Alcotest.test_case "persist: write fault degrades" `Quick
      (scrub test_store_write_degrades);
    Alcotest.test_case "persist: torn write is a miss" `Quick
      (scrub test_store_torn_write);
    Alcotest.test_case "persist: read fault is a miss" `Quick
      (scrub test_read_fault_is_miss);
    Alcotest.test_case "persist: rename fault degrades" `Quick
      (scrub test_rename_fault_degrades);
    Alcotest.test_case "persist: open fault raises" `Quick
      (scrub test_open_fault_raises);
    Alcotest.test_case "journal: write fault degrades" `Quick
      (scrub test_journal_write_degrades);
    Alcotest.test_case "journal: fingerprint mismatch discards loudly" `Quick
      (scrub test_journal_fingerprint_discard);
    Alcotest.test_case "persist: default_dir absolute" `Quick
      (scrub test_default_dir_absolute);
    Alcotest.test_case "cached: reconstruct fault recomputes" `Quick
      (scrub test_cached_reconstruct_fault);
    Alcotest.test_case "supervise: deadline is report-only" `Quick
      (scrub test_deadline_report_only);
    Alcotest.test_case "property: retries converge to fault-free" `Quick
      (scrub test_retry_run_bit_identical);
    Alcotest.test_case "property: keep-going survivors identical" `Quick
      (scrub test_keep_going_survivors_identical);
    Alcotest.test_case "harness: keep-going drops exactly the faulted loop"
      `Quick (scrub test_harness_keep_going);
  ]
