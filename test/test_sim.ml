(* The SpMT simulator, the address plans, the list scheduler and the
   single-threaded baseline. *)

module K = Ts_modsched.Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Ts_spmt.Config.default
let params = cfg.Ts_spmt.Config.params

(* --- Address plans --- *)

let test_plan_deterministic () =
  let g = Fixtures.spec_loop () in
  let p1 = Ts_spmt.Address_plan.create ~seed:"s" g in
  let p2 = Ts_spmt.Address_plan.create ~seed:"s" g in
  for i = 0 to 50 do
    check_int "same stream"
      (Ts_spmt.Address_plan.addr p1 ~node:0 ~iter:i)
      (Ts_spmt.Address_plan.addr p2 ~node:0 ~iter:i)
  done

let test_plan_non_memory_rejected () =
  let g = Fixtures.spec_loop () in
  check_bool "fmul has no address" true
    (match Ts_spmt.Address_plan.addr (Ts_spmt.Address_plan.create g) ~node:1 ~iter:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_plan_collision_forcing () =
  let g = Fixtures.spec_loop () in
  let plan = Ts_spmt.Address_plan.create g in
  (* locate the mem edge index *)
  let idx = ref (-1) in
  Array.iteri
    (fun i (e : Ts_ddg.Ddg.edge) -> if e.kind = Ts_ddg.Ddg.Mem then idx := i)
    g.edges;
  let hits = ref 0 and total = 5000 in
  for i = 1 to total do
    if Ts_spmt.Address_plan.realised plan ~edge_index:!idx ~iter:i then begin
      incr hits;
      (* when realised, the consumer load reads the producer store's
         previous-iteration address *)
      check_int "collision address"
        (Ts_spmt.Address_plan.addr plan ~node:2 ~iter:(i - 1))
        (Ts_spmt.Address_plan.addr plan ~node:0 ~iter:i)
    end
  done;
  let rate = float_of_int !hits /. float_of_int total in
  check_bool (Printf.sprintf "rate %.3f tracks p=0.1" rate) true
    (rate > 0.07 && rate < 0.13)

let test_plan_before_distance () =
  let g = Fixtures.spec_loop () in
  let plan = Ts_spmt.Address_plan.create g in
  let idx = ref (-1) in
  Array.iteri
    (fun i (e : Ts_ddg.Ddg.edge) -> if e.kind = Ts_ddg.Ddg.Mem then idx := i)
    g.edges;
  check_bool "iteration 0 has no producer" false
    (Ts_spmt.Address_plan.realised plan ~edge_index:!idx ~iter:0)

(* --- List scheduler --- *)

let test_list_sched_chain () =
  let ls = Ts_modsched.List_sched.run (Fixtures.chain 3) in
  Alcotest.(check (array int)) "serial chain" [| 0; 1; 2 |] ls.time;
  check_int "makespan" 3 ls.makespan;
  Ts_modsched.List_sched.validate ls

let test_list_sched_width () =
  (* 8 independent ALU ops, 4-wide: two cycles *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  for _ = 1 to 8 do
    ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu)
  done;
  let g = Ts_ddg.Ddg.Builder.build b in
  let ls = Ts_modsched.List_sched.run g in
  check_int "two cycles" 2 (1 + Array.fold_left max 0 ls.time);
  Ts_modsched.List_sched.validate ls

let test_list_sched_unit_contention () =
  (* three fmuls on the toy machine's unpipelined multiplier: starts 0,4,8 *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.toy in
  for _ = 1 to 3 do
    ignore (Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Fmul)
  done;
  let g = Ts_ddg.Ddg.Builder.build b in
  let ls = Ts_modsched.List_sched.run g in
  let sorted = Array.copy ls.time in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "serialised on the unit" [| 0; 4; 8 |] sorted

let test_list_sched_ignores_carried () =
  let ls = Ts_modsched.List_sched.run (Fixtures.accumulator ()) in
  check_int "fadd after load" 3 ls.time.(1);
  Ts_modsched.List_sched.validate ls

let prop_list_sched_valid =
  QCheck.Test.make ~count:50 ~name:"list schedules valid on generated loops"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      let ls = Ts_modsched.List_sched.run g in
      Ts_modsched.List_sched.validate ls;
      ls.makespan >= Ts_ddg.Mii.ldp g)

(* --- Sim --- *)

let kernel_of g = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel

let test_sim_basic_counts () =
  let g = Fixtures.motivating () in
  let st = Ts_spmt.Sim.run cfg (kernel_of g) ~trip:200 in
  check_int "committed" 200 st.Ts_spmt.Sim.committed;
  check_bool "cycles positive" true (st.Ts_spmt.Sim.cycles > 0);
  check_bool "comm = stalls + pair cycles" true
    (st.Ts_spmt.Sim.communication_overhead
     = st.Ts_spmt.Sim.sync_stall_cycles + st.Ts_spmt.Sim.send_recv_cycles);
  check_int "pairs = plan * trip"
    (K.send_recv_pairs_per_iter (kernel_of g) * 200)
    st.Ts_spmt.Sim.send_recv_pairs

let test_sim_deterministic () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let plan = Ts_spmt.Address_plan.create g in
  let a = Ts_spmt.Sim.run ~plan cfg k ~trip:300 in
  let b = Ts_spmt.Sim.run ~plan cfg k ~trip:300 in
  check_int "same cycles" a.Ts_spmt.Sim.cycles b.Ts_spmt.Sim.cycles;
  check_int "same squashes" a.Ts_spmt.Sim.squashes b.Ts_spmt.Sim.squashes

let test_sim_rate_floor () =
  (* throughput can never beat II / ncore *)
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let trip = 500 in
  let st = Ts_spmt.Sim.run cfg k ~trip in
  check_bool "bounded by II/ncore" true
    (st.Ts_spmt.Sim.cycles * params.ncore >= k.K.ii * trip)

let test_sim_more_cores_not_slower () =
  let g = List.hd Ts_workload.Doacross.equake.Ts_workload.Doacross.loops in
  let k = (Ts_tms.Tms.schedule_sweep ~params g).Ts_tms.Tms.kernel in
  let plan = Ts_spmt.Address_plan.create g in
  let run n =
    (Ts_spmt.Sim.run ~plan ~warmup:256 (Ts_spmt.Config.with_ncore cfg n) k ~trip:500)
      .Ts_spmt.Sim.cycles
  in
  let c2 = run 2 and c8 = run 8 in
  check_bool "8 cores at least as fast as 2" true (c8 <= c2)

let test_sim_sync_mem_no_squashes () =
  let g = Fixtures.spec_loop () in
  let k = kernel_of g in
  let st = Ts_spmt.Sim.run ~sync_mem:true cfg k ~trip:2000 in
  check_int "no speculation, no squashes" 0 st.Ts_spmt.Sim.squashes

let test_sim_speculation_squashes () =
  (* spec_loop's carried store->load (p=0.1) with a tight schedule produces
     genuine violations *)
  let g = Fixtures.spec_loop () in
  let k = kernel_of g in
  let st = Ts_spmt.Sim.run cfg k ~trip:2000 in
  check_bool "some squashes" true (st.Ts_spmt.Sim.squashes > 0);
  check_bool "rate near p" true (st.Ts_spmt.Sim.misspec_rate < 0.2)

let test_sim_warmup_excluded () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let plan = Ts_spmt.Address_plan.create g in
  let cold = Ts_spmt.Sim.run ~plan cfg k ~trip:400 in
  let warm = Ts_spmt.Sim.run ~plan ~warmup:512 cfg k ~trip:400 in
  check_bool "steady state at least as fast" true
    (warm.Ts_spmt.Sim.cycles <= cold.Ts_spmt.Sim.cycles);
  check_bool "fewer cold misses counted" true
    (warm.Ts_spmt.Sim.l2_misses <= cold.Ts_spmt.Sim.l2_misses)

let test_sim_stall_breakdown_consistent () =
  let g = Fixtures.motivating () in
  let st = Ts_spmt.Sim.run cfg (kernel_of g) ~trip:300 in
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 st.Ts_spmt.Sim.stall_breakdown
  in
  check_int "breakdown sums to total" st.Ts_spmt.Sim.sync_stall_cycles total

let test_sim_bad_args () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  check_bool "trip 0 rejected" true
    (match Ts_spmt.Sim.run cfg k ~trip:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "negative warmup rejected" true
    (match Ts_spmt.Sim.run ~warmup:(-1) cfg k ~trip:10 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_sim_wb_peak_counts_stores () =
  (* one store per iteration: with a single core, threads run one at a
     time, so at most one speculative write is buffered at once *)
  let g = Fixtures.spec_loop () in
  let k = kernel_of g in
  let one = Ts_spmt.Sim.run (Ts_spmt.Config.with_ncore cfg 1) k ~trip:200 in
  check_int "single core buffers one store" 1 one.Ts_spmt.Sim.wb_peak;
  (* several threads in flight: their unbuffered stores accumulate *)
  let many = Ts_spmt.Sim.run cfg k ~trip:200 in
  check_bool
    (Printf.sprintf "overlapped threads stack writes (peak %d)"
       many.Ts_spmt.Sim.wb_peak)
    true
    (many.Ts_spmt.Sim.wb_peak > 1);
  (* storeless loop: the buffer is never touched *)
  let chain = K.of_times (Fixtures.chain 3) ~ii:2 [| 0; 1; 2 |] in
  let none = Ts_spmt.Sim.run cfg chain ~trip:100 in
  check_int "no stores, no occupancy" 0 none.Ts_spmt.Sim.wb_peak

let test_sim_check_does_not_perturb () =
  (* ~check:true must observe only: stats byte-identical to an unchecked
     run, on both a squash-heavy loop and the motivating one *)
  List.iter
    (fun g ->
      let k = kernel_of g in
      let plan = Ts_spmt.Address_plan.create g in
      let plain = Ts_spmt.Sim.run ~plan ~warmup:64 cfg k ~trip:300 in
      let checked =
        Ts_spmt.Sim.run ~plan ~warmup:64 ~check:true cfg k ~trip:300
      in
      check_bool
        (g.Ts_ddg.Ddg.name ^ ": checked stats identical")
        true (plain = checked))
    [ Fixtures.spec_loop (); Fixtures.motivating () ]

let test_ipc () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let st = Ts_spmt.Sim.run cfg k ~trip:300 in
  let ipc = Ts_spmt.Sim.ipc k st in
  check_bool "0 < ipc <= width * ncore" true
    (ipc > 0.0 && ipc <= 16.0)

(* --- Single-threaded baseline --- *)

let test_single_basic () =
  let g = Fixtures.motivating () in
  let st = Ts_spmt.Single.run cfg g ~trip:300 in
  check_int "iterations" 300 st.Ts_spmt.Single.iterations;
  check_bool "cycles positive" true (st.Ts_spmt.Single.cycles > 0)

let test_single_res_ii_floor () =
  (* steady state cannot beat ResII per iteration *)
  let g = Fixtures.generated ~seed:3 ~n_inst:30 () in
  let trip = 500 in
  let st = Ts_spmt.Single.run ~warmup:512 cfg g ~trip in
  check_bool "bounded by ResII" true
    (st.Ts_spmt.Single.cycles >= Ts_ddg.Mii.res_ii g * trip)

let test_single_recurrence_bound () =
  (* the accumulator chains at its realised latency: >= 3 cycles/iter *)
  let g = Fixtures.accumulator () in
  let trip = 500 in
  let st = Ts_spmt.Single.run ~warmup:128 cfg g ~trip in
  check_bool "recurrence-bound" true (st.Ts_spmt.Single.cycles >= 3 * trip)

let test_single_deterministic () =
  let g = Fixtures.spec_loop () in
  let plan = Ts_spmt.Address_plan.create g in
  let a = Ts_spmt.Single.run ~plan cfg g ~trip:400 in
  let b = Ts_spmt.Single.run ~plan cfg g ~trip:400 in
  check_int "same cycles" a.Ts_spmt.Single.cycles b.Ts_spmt.Single.cycles



(* --- observation + timeline --- *)

let test_observe_callback () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let seen = ref [] in
  ignore (Ts_spmt.Sim.run ~observe:(fun o -> seen := o :: !seen) cfg k ~trip:20);
  check_int "one observation per thread" 20 (List.length !seen);
  List.iter
    (fun (o : Ts_spmt.Sim.thread_obs) ->
      check_int "core = index mod ncore" (o.index mod params.ncore) o.core;
      check_bool "lifecycle ordered" true
        (o.start <= o.end_exec && o.end_exec <= o.commit_start
        && o.commit_start < o.commit_end))
    !seen

let test_observe_commit_order () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let commits = ref [] in
  ignore
    (Ts_spmt.Sim.run
       ~observe:(fun o -> commits := o.commit_end :: !commits)
       cfg k ~trip:50);
  (* head-thread commits are strictly ordered *)
  let rec ordered = function
    | a :: (b :: _ as rest) -> a > b && ordered rest
    | _ -> true
  in
  check_bool "commits strictly increasing" true (ordered !commits)

let test_timeline_render () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let obs = Ts_spmt.Timeline.collect ~n_threads:8 ~warmup:16 cfg k in
  check_int "eight threads" 8 (List.length obs);
  let s = Ts_spmt.Timeline.render ~ncore:params.ncore obs in
  check_bool "one lane per core + header" true
    (List.length (String.split_on_char '\n' s) >= params.ncore + 1);
  check_bool "has execution marks" true (String.contains s '=');
  check_bool "has commit marks" true (String.contains s 'c')

let test_timeline_empty () =
  Alcotest.(check string) "empty render" "(no threads observed)\n"
    (Ts_spmt.Timeline.render ~ncore:4 [])



let test_ring_latency_monotone () =
  (* slowing the ring can only slow a synchronisation-bound loop *)
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let plan = Ts_spmt.Address_plan.create g in
  let cycles c_reg_com =
    let cfg' =
      { cfg with Ts_spmt.Config.params = { params with c_reg_com } }
    in
    (Ts_spmt.Sim.run ~plan ~warmup:256 cfg' k ~trip:800).Ts_spmt.Sim.cycles
  in
  let c1 = cycles 1 and c3 = cycles 3 and c8 = cycles 8 in
  check_bool "1-cycle ring fastest" true (c1 <= c3);
  check_bool "8-cycle ring slowest" true (c3 <= c8)

let test_spawn_cost_monotone () =
  let g = Fixtures.motivating () in
  let k = kernel_of g in
  let plan = Ts_spmt.Address_plan.create g in
  let cycles c_spawn =
    let cfg' = { cfg with Ts_spmt.Config.params = { params with c_spawn } } in
    (Ts_spmt.Sim.run ~plan ~warmup:256 cfg' k ~trip:800).Ts_spmt.Sim.cycles
  in
  check_bool "cheaper spawn at least as fast" true (cycles 1 <= cycles 12)

let suite =
  [
    Alcotest.test_case "plan: deterministic" `Quick test_plan_deterministic;
    Alcotest.test_case "plan: non-memory rejected" `Quick test_plan_non_memory_rejected;
    Alcotest.test_case "plan: collision forcing" `Quick test_plan_collision_forcing;
    Alcotest.test_case "plan: before distance" `Quick test_plan_before_distance;
    Alcotest.test_case "list_sched: chain" `Quick test_list_sched_chain;
    Alcotest.test_case "list_sched: width" `Quick test_list_sched_width;
    Alcotest.test_case "list_sched: unit contention" `Quick test_list_sched_unit_contention;
    Alcotest.test_case "list_sched: carried deps ignored" `Quick
      test_list_sched_ignores_carried;
    QCheck_alcotest.to_alcotest prop_list_sched_valid;
    Alcotest.test_case "sim: basic counters" `Quick test_sim_basic_counts;
    Alcotest.test_case "sim: deterministic" `Quick test_sim_deterministic;
    Alcotest.test_case "sim: II/ncore floor" `Quick test_sim_rate_floor;
    Alcotest.test_case "sim: more cores helps" `Quick test_sim_more_cores_not_slower;
    Alcotest.test_case "sim: sync_mem disables squashes" `Quick
      test_sim_sync_mem_no_squashes;
    Alcotest.test_case "sim: speculation squashes" `Quick test_sim_speculation_squashes;
    Alcotest.test_case "sim: warmup excluded" `Quick test_sim_warmup_excluded;
    Alcotest.test_case "sim: stall breakdown" `Quick test_sim_stall_breakdown_consistent;
    Alcotest.test_case "sim: argument validation" `Quick test_sim_bad_args;
    Alcotest.test_case "sim: wb peak occupancy" `Quick test_sim_wb_peak_counts_stores;
    Alcotest.test_case "sim: check does not perturb" `Quick
      test_sim_check_does_not_perturb;
    Alcotest.test_case "sim: ipc sanity" `Quick test_ipc;
    Alcotest.test_case "single: basic" `Quick test_single_basic;
    Alcotest.test_case "single: ResII floor" `Quick test_single_res_ii_floor;
    Alcotest.test_case "single: recurrence bound" `Quick test_single_recurrence_bound;
    Alcotest.test_case "single: deterministic" `Quick test_single_deterministic;
    Alcotest.test_case "observe: per-thread callback" `Quick test_observe_callback;
    Alcotest.test_case "observe: commit order" `Quick test_observe_commit_order;
    Alcotest.test_case "timeline: render" `Quick test_timeline_render;
    Alcotest.test_case "timeline: empty" `Quick test_timeline_empty;
    Alcotest.test_case "invariant: ring latency monotone" `Quick
      test_ring_latency_monotone;
    Alcotest.test_case "invariant: spawn cost monotone" `Quick
      test_spawn_cost_monotone;
  ]
