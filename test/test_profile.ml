(* Dependence profiling, prologue/epilogue slices, register-pressure check,
   and a reference-model property for the cache. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Profile --- *)

let test_measure_tracks_ground_truth () =
  let g = Fixtures.spec_loop () in
  (* ground truth probability is 0.1 *)
  match Ts_spmt.Profile.measure g ~train_iters:20_000 with
  | [ p ] ->
      check_bool
        (Printf.sprintf "measured %.3f near 0.1" p.probability)
        true
        (p.probability > 0.08 && p.probability < 0.12)
  | _ -> Alcotest.fail "expected one memory edge profile"

let test_measure_certain_dependence () =
  (* probability-1 dependences alias every iteration *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let ld = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let f = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Fadd in
  let st = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Store in
  Ts_ddg.Ddg.Builder.dep b ld f;
  Ts_ddg.Ddg.Builder.dep b f st;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:1 ~prob:1.0 st ld;
  let g = Ts_ddg.Ddg.Builder.build b in
  match Ts_spmt.Profile.measure g ~train_iters:500 with
  | [ p ] ->
      (* iteration 0 has no producer; all others alias *)
      check_int "occurrences" 499 p.occurrences;
      (* 499 hits out of 499 observable iterations: the first [distance]
         iterations have no producer and must not dilute the estimate *)
      Alcotest.(check (float 1e-9)) "probability exactly 1" 1.0 p.probability
  | _ -> Alcotest.fail "expected one profile"

let test_measure_window_excludes_warmup () =
  (* distance-3 dependence firing every iteration: only [train_iters - 3]
     iterations can observe it, and the probability is over that window *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let ld = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let st = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Store in
  Ts_ddg.Ddg.Builder.dep b ld st;
  Ts_ddg.Ddg.Builder.mem_dep b ~dist:3 ~prob:1.0 st ld;
  let g = Ts_ddg.Ddg.Builder.build b in
  (match Ts_spmt.Profile.measure g ~train_iters:10 with
  | [ p ] ->
      check_int "7 observable occurrences" 7 p.occurrences;
      Alcotest.(check (float 1e-9)) "probability over the window" 1.0 p.probability
  | _ -> Alcotest.fail "expected one profile");
  (* degenerate: training shorter than the dependence distance *)
  match Ts_spmt.Profile.measure g ~train_iters:2 with
  | [ p ] ->
      check_int "no observable iterations" 0 p.occurrences;
      Alcotest.(check (float 1e-9)) "empty window measures 0" 0.0 p.probability
  | _ -> Alcotest.fail "expected one profile"

let test_apply_replaces_probabilities () =
  let g = Fixtures.spec_loop () in
  let profiled = Ts_spmt.Profile.profile ~train_iters:20_000 g in
  check_int "same structure" (Array.length g.edges) (Array.length profiled.edges);
  (match Ts_ddg.Ddg.mem_edges profiled with
  | [ e ] -> check_bool "measured prob in place" true (e.prob > 0.05 && e.prob < 0.15)
  | _ -> Alcotest.fail "one mem edge");
  check_int "MII unchanged" (Ts_ddg.Mii.mii g) (Ts_ddg.Mii.mii profiled)

let test_apply_floor () =
  (* a dependence that never fires still gets a non-zero compiler-visible
     probability *)
  let g = Fixtures.spec_loop () in
  let profiles =
    [ { Ts_spmt.Profile.edge_index = 2; occurrences = 0; probability = 0.0 } ]
  in
  (* edge 2 is the mem edge in spec_loop's edge order *)
  let idx = ref (-1) in
  Array.iteri
    (fun i (e : Ts_ddg.Ddg.edge) -> if e.kind = Ts_ddg.Ddg.Mem then idx := i)
    g.edges;
  let profiles =
    List.map (fun p -> { p with Ts_spmt.Profile.edge_index = !idx }) profiles
  in
  let g' = Ts_spmt.Profile.apply g profiles in
  match Ts_ddg.Ddg.mem_edges g' with
  | [ e ] -> Alcotest.(check (float 1e-9)) "floored" 0.001 e.prob
  | _ -> Alcotest.fail "one mem edge"

let test_profile_then_schedule () =
  (* the compiler pipeline: profile, then schedule with measured probs *)
  let g = Fixtures.generated ~seed:21 ~n_inst:20 () in
  let profiled = Ts_spmt.Profile.profile ~train_iters:3000 g in
  let r = Ts_tms.Tms.schedule ~params:Ts_isa.Spmt_params.default profiled in
  Ts_modsched.Kernel.validate r.Ts_tms.Tms.kernel

let test_measure_bad_iters () =
  check_bool "zero train iters rejected" true
    (match Ts_spmt.Profile.measure (Fixtures.spec_loop ()) ~train_iters:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- prologue / epilogue --- *)

let slices_kernel () =
  (* 3-node chain at ii=2: stages 0,0,1 *)
  Ts_modsched.Kernel.of_times (Fixtures.chain 3) ~ii:2 [| 0; 1; 2 |]

let test_thread_slice_prologue () =
  let k = slices_kernel () in
  (* thread 0 runs only stage-0 instructions *)
  Alcotest.(check (list int)) "prologue thread" [ 0; 1 ]
    (Ts_modsched.Codegen.thread_slice k ~thread:0 ~trip:5);
  (* middle threads run everything, in row order (ties by id) *)
  Alcotest.(check (list int)) "steady state" [ 0; 2; 1 ]
    (Ts_modsched.Codegen.thread_slice k ~thread:2 ~trip:5);
  (* the final thread drains stage 1 *)
  Alcotest.(check (list int)) "epilogue thread" [ 2 ]
    (Ts_modsched.Codegen.thread_slice k ~thread:5 ~trip:5)

let test_thread_slice_conservation () =
  let k = slices_kernel () in
  let trip = 7 in
  let total = ref 0 in
  for j = 0 to Ts_modsched.Codegen.n_threads k ~trip - 1 do
    total := !total + List.length (Ts_modsched.Codegen.thread_slice k ~thread:j ~trip)
  done;
  check_int "every source instruction exactly once"
    (trip * Ts_ddg.Ddg.n_nodes k.Ts_modsched.Kernel.g)
    !total

let prop_slice_conservation =
  QCheck.Test.make ~count:25 ~name:"thread slices conserve instructions"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      match Ts_sms.Sms.schedule g with
      | exception Ts_sms.Sms.No_schedule _ -> QCheck.assume_fail ()
      | r ->
          let k = r.Ts_sms.Sms.kernel in
          let trip = 11 in
          let total = ref 0 in
          for j = 0 to Ts_modsched.Codegen.n_threads k ~trip - 1 do
            total :=
              !total + List.length (Ts_modsched.Codegen.thread_slice k ~thread:j ~trip)
          done;
          !total = trip * Ts_ddg.Ddg.n_nodes g)

(* --- register pressure --- *)

let test_fits_registers () =
  let g = Fixtures.motivating () in
  let k = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  check_bool "small kernel fits" true (Ts_modsched.Kernel.fits_registers k)

let test_suite_register_pressure () =
  (* TMS's aggressive stage counts must still fit the register file *)
  let params = Ts_isa.Spmt_params.default in
  let loops = Ts_workload.Spec_suite.loops (Ts_workload.Spec_suite.find "mgrid") in
  List.iter
    (fun g ->
      let r = Ts_tms.Tms.schedule ~params g in
      check_bool
        (g.Ts_ddg.Ddg.name ^ " within register budget")
        true
        (Ts_modsched.Kernel.fits_registers r.Ts_tms.Tms.kernel))
    loops

(* --- cache vs reference model --- *)

let prop_cache_reference_model =
  QCheck.Test.make ~count:60 ~name:"set-associative cache matches a reference LRU"
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 200) (int_bound 40)))
    (fun (_, blocks) ->
      let line = 32 and assoc = 2 and size = 256 in
      let n_sets = size / (assoc * line) in
      let cache = Ts_spmt.Cache.create ~size ~assoc ~line in
      (* reference: per set, a most-recent-first list truncated to assoc *)
      let ref_sets = Array.make n_sets [] in
      List.for_all
        (fun blk ->
          let addr = blk * line in
          let set = blk mod n_sets in
          let expect_hit = List.mem blk ref_sets.(set) in
          let got_hit = Ts_spmt.Cache.access cache addr in
          ref_sets.(set) <-
            blk :: List.filter (fun b -> b <> blk) ref_sets.(set);
          (if List.length ref_sets.(set) > assoc then
             ref_sets.(set) <-
               List.filteri (fun i _ -> i < assoc) ref_sets.(set));
          got_hit = expect_hit)
        blocks)

let suite =
  [
    Alcotest.test_case "profile: measures ground truth" `Quick
      test_measure_tracks_ground_truth;
    Alcotest.test_case "profile: certain dependence" `Quick
      test_measure_certain_dependence;
    Alcotest.test_case "profile: window excludes warmup" `Quick
      test_measure_window_excludes_warmup;
    Alcotest.test_case "profile: apply" `Quick test_apply_replaces_probabilities;
    Alcotest.test_case "profile: zero floored" `Quick test_apply_floor;
    Alcotest.test_case "profile: pipeline to scheduler" `Quick
      test_profile_then_schedule;
    Alcotest.test_case "profile: argument validation" `Quick test_measure_bad_iters;
    Alcotest.test_case "slices: prologue/kernel/epilogue" `Quick
      test_thread_slice_prologue;
    Alcotest.test_case "slices: conservation" `Quick test_thread_slice_conservation;
    QCheck_alcotest.to_alcotest prop_slice_conservation;
    Alcotest.test_case "registers: small kernel fits" `Quick test_fits_registers;
    Alcotest.test_case "registers: TMS suite pressure" `Slow
      test_suite_register_pressure;
    QCheck_alcotest.to_alcotest prop_cache_reference_model;
  ]
