(* IMS, thread-sensitive IMS, loop unrolling, code generation, and the
   extension experiments. *)

module K = Ts_modsched.Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let params = Ts_isa.Spmt_params.default

(* --- IMS --- *)

let test_ims_chain () =
  let r = Ts_sms.Ims.schedule (Fixtures.chain 4) in
  check_int "II = MII" 1 r.Ts_sms.Ims.kernel.K.ii;
  K.validate r.kernel

let test_ims_motivating () =
  let r = Ts_sms.Ims.schedule (Fixtures.motivating ()) in
  check_int "II = 8" 8 r.Ts_sms.Ims.kernel.K.ii;
  K.validate r.kernel

let test_ims_accumulator () =
  let r = Ts_sms.Ims.schedule (Fixtures.accumulator ()) in
  check_int "II = RecII = 3" 3 r.Ts_sms.Ims.kernel.K.ii

let test_ims_eviction_needed () =
  (* three loads feeding a store: 4 mem ops, 2 ports -> II 2, with enough
     contention that forced placement paths execute *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let l1 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let l2 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let l3 = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Load in
  let s = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Store in
  Ts_ddg.Ddg.Builder.dep b l1 s;
  Ts_ddg.Ddg.Builder.dep b l2 s;
  Ts_ddg.Ddg.Builder.dep b l3 s;
  let g = Ts_ddg.Ddg.Builder.build b in
  let r = Ts_sms.Ims.schedule g in
  check_bool "II >= MII" true (r.Ts_sms.Ims.kernel.K.ii >= Ts_ddg.Mii.mii g);
  K.validate r.kernel

let test_ims_budget_exhaustion () =
  (* a tiny budget forces II escalation but still terminates *)
  let g = Fixtures.motivating () in
  let r = Ts_sms.Ims.schedule ~budget_ratio:1 g in
  K.validate r.Ts_sms.Ims.kernel

let prop_ims_valid =
  QCheck.Test.make ~count:40 ~name:"IMS kernels valid; II >= MII"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      match Ts_sms.Ims.schedule g with
      | exception Ts_sms.Ims.No_schedule _ -> QCheck.assume_fail ()
      | r ->
          K.validate r.Ts_sms.Ims.kernel;
          r.Ts_sms.Ims.kernel.K.ii >= Ts_ddg.Mii.mii g)

(* --- thread-sensitive IMS --- *)

let test_ts_ims_motivating () =
  let g = Fixtures.motivating () in
  let r = Ts_tms.Tms_ims.schedule ~params:Ts_isa.Spmt_params.two_core g in
  (* The §7.9(a) plateau walk tie-breaks toward the lowest II; on the
     motivating loop IMS placement lands on the same II as TMS-over-SMS
     (deeper pipelining), at a C_delay no worse than SMS's 11. *)
  check_bool "II matches TMS's 8 (lowest in plateau)" true
    (r.Ts_tms.Tms.kernel.K.ii = 8);
  check_bool "C_delay no worse than SMS's 11" true
    (r.Ts_tms.Tms.achieved_c_delay <= 11);
  check_bool "achieved within threshold" true
    (r.Ts_tms.Tms.achieved_c_delay <= r.Ts_tms.Tms.c_delay_threshold);
  check_bool "not fallen back" false r.Ts_tms.Tms.fell_back;
  K.validate r.Ts_tms.Tms.kernel

let test_ts_ims_threshold_respected () =
  let g = Fixtures.motivating () in
  let r = Ts_tms.Tms_ims.schedule ~params g in
  check_bool "achieved <= threshold" true
    (r.Ts_tms.Tms.fell_back
    || r.Ts_tms.Tms.achieved_c_delay <= r.Ts_tms.Tms.c_delay_threshold)

let prop_ts_ims_valid =
  QCheck.Test.make ~count:15 ~name:"thread-sensitive IMS: valid, bounded"
    Fixtures.arb_loop (fun arb ->
      let g = Fixtures.loop_of_arb arb in
      match Ts_tms.Tms_ims.schedule ~params g with
      | exception Ts_sms.Ims.No_schedule _ -> QCheck.assume_fail ()
      | r ->
          K.validate r.Ts_tms.Tms.kernel;
          r.Ts_tms.Tms.fell_back
          || r.Ts_tms.Tms.achieved_c_delay <= r.Ts_tms.Tms.c_delay_threshold)

(* --- unrolling --- *)

let test_unroll_identity () =
  let g = Fixtures.motivating () in
  let g1 = Ts_ddg.Unroll.by g ~factor:1 in
  check_int "same nodes" (Ts_ddg.Ddg.n_nodes g) (Ts_ddg.Ddg.n_nodes g1);
  check_int "same edges" (Array.length g.edges) (Array.length g1.edges);
  check_int "same MII" (Ts_ddg.Mii.mii g) (Ts_ddg.Mii.mii g1)

let test_unroll_sizes () =
  let g = Fixtures.motivating () in
  let g3 = Ts_ddg.Unroll.by g ~factor:3 in
  check_int "3x nodes" (3 * Ts_ddg.Ddg.n_nodes g) (Ts_ddg.Ddg.n_nodes g3);
  check_int "3x edges" (3 * Array.length g.edges) (Array.length g3.edges);
  Ts_ddg.Ddg.validate g3

let test_unroll_recurrence_scales () =
  (* RecII of the k-unrolled body is ~k times the original: same cycle
     latency repeated k times per (new) iteration *)
  let g = Fixtures.accumulator () in
  check_int "acc RecII x4" 12 (Ts_ddg.Mii.rec_ii (Ts_ddg.Unroll.by g ~factor:4));
  let m = Fixtures.motivating () in
  check_int "motivating RecII x2" 16 (Ts_ddg.Mii.rec_ii (Ts_ddg.Unroll.by m ~factor:2))

let test_unroll_self_dep_chain () =
  (* a distance-1 self dep unrolled by 3: copies chain 0->1->2 within the
     body (distance 0) and 2->0 across (distance 1) *)
  let g = Fixtures.accumulator () in
  let g3 = Ts_ddg.Unroll.by g ~factor:3 in
  let carried =
    List.filter (fun (e : Ts_ddg.Ddg.edge) -> e.distance >= 1) (Ts_ddg.Ddg.reg_edges g3)
  in
  check_int "one carried copy of the self dep" 1 (List.length carried)

let test_unroll_distance_math () =
  (* distance-5 dep unrolled by 2: consumer copy j reads producer copy
     (j - 5) mod 2 at distance (5 - j + j')/2 *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let p = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  Ts_ddg.Ddg.Builder.dep b ~dist:5 p c;
  let g = Ts_ddg.Ddg.Builder.build b in
  let g2 = Ts_ddg.Unroll.by g ~factor:2 in
  List.iter
    (fun (e : Ts_ddg.Ddg.edge) ->
      (* copy 0 consumer: producer copy 1, distance 3; copy 1: copy 0,
         distance 2 *)
      if e.dst = 1 then (check_int "src" 2 e.src; check_int "dist" 3 e.distance)
      else (check_int "src'" 0 e.src; check_int "dist'" 2 e.distance))
    (Ts_ddg.Ddg.reg_edges g2)

let test_unroll_bad_factor () =
  check_bool "factor 0 rejected" true
    (match Ts_ddg.Unroll.by (Fixtures.chain 2) ~factor:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_unroll_schedulable =
  QCheck.Test.make ~count:20 ~name:"unrolled loops validate and schedule"
    QCheck.(pair (int_bound 200) (int_range 2 4))
    (fun (seed, factor) ->
      let g = Fixtures.generated ~seed ~n_inst:14 () in
      let gu = Ts_ddg.Unroll.by g ~factor in
      Ts_ddg.Ddg.validate gu;
      match Ts_sms.Sms.schedule gu with
      | r ->
          K.validate r.Ts_sms.Sms.kernel;
          true
      | exception Ts_sms.Sms.No_schedule _ -> true (* rare ordering dead-end *))

(* --- codegen --- *)

let codegen_of g =
  Ts_modsched.Codegen.of_kernel (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel

let test_codegen_counts () =
  let g = Fixtures.motivating () in
  let k = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  let c = Ts_modsched.Codegen.of_kernel k in
  check_int "sends = pairs" (K.send_recv_pairs_per_iter k) c.n_sends;
  check_int "recvs = sends" c.n_sends c.n_recvs

let test_codegen_ops_once () =
  let g = Fixtures.motivating () in
  let c = codegen_of g in
  let ops =
    List.filter_map
      (function _, Ts_modsched.Codegen.Op v -> Some v | _ -> None)
      c.listing
  in
  Alcotest.(check (list int)) "each op once, spawn first"
    (List.init (Ts_ddg.Ddg.n_nodes g) Fun.id)
    (List.sort compare ops);
  match c.listing with
  | (0, Ts_modsched.Codegen.Spawn) :: _ -> ()
  | _ -> Alcotest.fail "spawn must open the thread"

let test_codegen_recv_before_consumer () =
  let g = Fixtures.motivating () in
  let k = (Ts_sms.Sms.schedule g).Ts_sms.Sms.kernel in
  let c = Ts_modsched.Codegen.of_kernel k in
  List.iter
    (fun (row, i) ->
      match i with
      | Ts_modsched.Codegen.Recv { value; hop } ->
          List.iter
            (fun (e : Ts_ddg.Ddg.edge) ->
              if e.kind = Ts_ddg.Ddg.Reg && K.d_ker k e = hop then
                check_bool "recv row <= consumer row" true
                  (row <= k.K.row.(e.dst)))
            k.K.g.succs.(value)
      | _ -> ())
    c.listing

let test_codegen_relay_copies () =
  (* a 2-hop value needs a relay copy *)
  let b = Ts_ddg.Ddg.Builder.create Ts_isa.Machine.spmt_core in
  let p = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  let c = Ts_ddg.Ddg.Builder.add b Ts_isa.Opcode.Ialu in
  Ts_ddg.Ddg.Builder.dep b ~dist:2 p c;
  let g = Ts_ddg.Ddg.Builder.build b in
  let k = K.of_times g ~ii:2 [| 0; 1 |] in
  let cg = Ts_modsched.Codegen.of_kernel k in
  check_int "two sends (one per hop)" 2 cg.n_sends;
  check_int "one relay copy" 1 cg.n_copies

let test_codegen_pp () =
  let c = codegen_of (Fixtures.motivating ()) in
  let s = Format.asprintf "%a" Ts_modsched.Codegen.pp c in
  check_bool "listing non-trivial" true (String.length s > 200)

(* --- extension experiments --- *)

let test_unrolling_experiment () =
  let rows =
    Ts_harness.Unrolling.compute ~factors:[ 1; 2 ] ~cfg:Ts_spmt.Config.default ()
  in
  check_bool "rows for every (loop, factor)" true (List.length rows >= 6);
  (* unrolling amortises communication: pairs per source iteration must
     not grow when doubling the body *)
  List.iter
    (fun (sel : Ts_workload.Doacross.selected) ->
      let of_factor f =
        List.find_opt
          (fun (r : Ts_harness.Unrolling.row) -> r.bench = sel.bench && r.factor = f)
          rows
      in
      match (of_factor 1, of_factor 2) with
      | Some r1, Some r2 ->
          check_bool (sel.bench ^ ": pairs/iter non-increasing") true
            (r2.pairs_per_iter <= r1.pairs_per_iter +. 1e-9)
      | _ -> ())
    Ts_workload.Doacross.all

let test_schedulers_experiment () =
  let rows = Ts_harness.Schedulers.compute ~cfg:Ts_spmt.Config.default in
  check_int "5 variants x 4 loops" 20 (List.length rows);
  (* generality: thread-sensitive IMS achieves a C_delay within 2x of
     thread-sensitive SMS on every loop *)
  List.iter
    (fun (sel : Ts_workload.Doacross.selected) ->
      let find v =
        List.find
          (fun (r : Ts_harness.Schedulers.row) ->
            r.variant = v && r.loop = (List.hd sel.loops).Ts_ddg.Ddg.name)
          rows
      in
      let ts_sms = find "ts-sms" and ts_ims = find "ts-ims" and sms = find "sms" in
      check_bool (sel.bench ^ ": ts-ims C_delay <= SMS C_delay") true
        (ts_ims.c_delay <= sms.c_delay);
      check_bool (sel.bench ^ ": ts-ims within 2x of ts-sms") true
        (ts_ims.c_delay <= 2 * max 4 ts_sms.c_delay))
    Ts_workload.Doacross.all



let test_scaling_experiment () =
  let rows = Ts_harness.Scaling.compute ~ncores:[ 2; 8 ] () in
  check_int "two points per benchmark" 8 (List.length rows);
  List.iter
    (fun (sel : Ts_workload.Doacross.selected) ->
      let get n =
        List.find
          (fun (r : Ts_harness.Scaling.row) -> r.bench = sel.bench && r.ncore = n)
          rows
      in
      let r2 = get 2 and r8 = get 8 in
      (* more cores never hurt TMS, and the simulator never beats the cost
         model's serial floor by more than measurement fuzz *)
      check_bool (sel.bench ^ ": 8 cores at least as fast") true
        (r8.tms_cpi <= r2.tms_cpi +. 1e-9);
      check_bool (sel.bench ^ ": floor respected") true
        (r8.tms_cpi >= r8.model_floor *. 0.9))
    Ts_workload.Doacross.all

let test_experiment_names_resolve () =
  (* every advertised experiment name must dispatch (use tiny limits and
     discard output; the heavyweight ones are covered elsewhere) *)
  List.iter
    (fun name ->
      match name with
      | "table2" | "fig4" ->
          Ts_harness.Experiments.run ~limit:1 ~names:[ name ] ignore
      | "table1" -> Ts_harness.Experiments.run ~names:[ name ] ignore
      | _ -> () (* doacross-based ones run in their own tests *))
    Ts_harness.Experiments.all_names;
  check_int "names stable" 12 (List.length Ts_harness.Experiments.all_names)

let suite =
  [
    Alcotest.test_case "ims: chain" `Quick test_ims_chain;
    Alcotest.test_case "ims: motivating II=8" `Quick test_ims_motivating;
    Alcotest.test_case "ims: accumulator" `Quick test_ims_accumulator;
    Alcotest.test_case "ims: eviction path" `Quick test_ims_eviction_needed;
    Alcotest.test_case "ims: tiny budget terminates" `Quick test_ims_budget_exhaustion;
    QCheck_alcotest.to_alcotest prop_ims_valid;
    Alcotest.test_case "ts-ims: motivating" `Quick test_ts_ims_motivating;
    Alcotest.test_case "ts-ims: threshold respected" `Quick
      test_ts_ims_threshold_respected;
    QCheck_alcotest.to_alcotest prop_ts_ims_valid;
    Alcotest.test_case "unroll: identity" `Quick test_unroll_identity;
    Alcotest.test_case "unroll: sizes" `Quick test_unroll_sizes;
    Alcotest.test_case "unroll: recurrence scales" `Quick test_unroll_recurrence_scales;
    Alcotest.test_case "unroll: self-dep chain" `Quick test_unroll_self_dep_chain;
    Alcotest.test_case "unroll: distance arithmetic" `Quick test_unroll_distance_math;
    Alcotest.test_case "unroll: bad factor" `Quick test_unroll_bad_factor;
    QCheck_alcotest.to_alcotest prop_unroll_schedulable;
    Alcotest.test_case "codegen: send/recv counts" `Quick test_codegen_counts;
    Alcotest.test_case "codegen: each op once" `Quick test_codegen_ops_once;
    Alcotest.test_case "codegen: recv precedes consumers" `Quick
      test_codegen_recv_before_consumer;
    Alcotest.test_case "codegen: relay copies" `Quick test_codegen_relay_copies;
    Alcotest.test_case "codegen: pp" `Quick test_codegen_pp;
    Alcotest.test_case "experiment: unrolling" `Slow test_unrolling_experiment;
    Alcotest.test_case "experiment: schedulers" `Slow test_schedulers_experiment;
    Alcotest.test_case "experiment: scaling" `Slow test_scaling_experiment;
    Alcotest.test_case "experiment: name dispatch" `Slow test_experiment_names_resolve;
  ]
